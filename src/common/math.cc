#include "common/math.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace hdldp {

double NormalPdf(double x) { return std::exp(-0.5 * x * x) / kSqrt2Pi; }

double NormalPdf(double x, double mean, double stddev) {
  assert(stddev > 0.0);
  const double z = (x - mean) / stddev;
  return std::exp(-0.5 * z * z) / (kSqrt2Pi * stddev);
}

double NormalCdf(double x) { return 0.5 * std::erfc(-x / kSqrt2); }

double NormalCdf(double x, double mean, double stddev) {
  assert(stddev > 0.0);
  return NormalCdf((x - mean) / stddev);
}

double NormalIntervalProb(double lo, double hi, double mean, double stddev) {
  assert(stddev > 0.0);
  if (hi <= lo) return 0.0;
  const double zlo = (lo - mean) / stddev;
  const double zhi = (hi - mean) / stddev;
  // Subtract in whichever tail representation loses less cancellation:
  // for an interval entirely in the right tail use the survival function.
  if (zlo >= 0.0) {
    return 0.5 * (std::erfc(zlo / kSqrt2) - std::erfc(zhi / kSqrt2));
  }
  if (zhi <= 0.0) {
    return 0.5 * (std::erfc(-zhi / kSqrt2) - std::erfc(-zlo / kSqrt2));
  }
  return NormalCdf(zhi) - NormalCdf(zlo);
}

double NormalQuantile(double p) {
  assert(p > 0.0 && p < 1.0);
  // Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  double x;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - plow) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log1p(-p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement against the true CDF.
  const double e = NormalCdf(x) - p;
  const double u = e * kSqrt2Pi * std::exp(0.5 * x * x);
  x = x - u / (1.0 + 0.5 * x * u);
  return x;
}

namespace {

struct SimpsonState {
  const std::function<double(double)>* f;
  std::size_t evaluations = 0;
  double error = 0.0;
  int max_depth;
};

double SimpsonRecurse(SimpsonState* state, double a, double b, double fa,
                      double fm, double fb, double whole, double tol,
                      int depth) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = (*state->f)(lm);
  const double frm = (*state->f)(rm);
  state->evaluations += 2;
  const double h = b - a;
  const double left = h / 12.0 * (fa + 4.0 * flm + fm);
  const double right = h / 12.0 * (fm + 4.0 * frm + fb);
  const double delta = left + right - whole;
  if (depth >= state->max_depth || std::abs(delta) <= 15.0 * tol) {
    state->error += std::abs(delta) / 15.0;
    return left + right + delta / 15.0;  // Richardson extrapolation.
  }
  return SimpsonRecurse(state, a, m, fa, flm, fm, left, 0.5 * tol, depth + 1) +
         SimpsonRecurse(state, m, b, fm, frm, fb, right, 0.5 * tol, depth + 1);
}

}  // namespace

QuadratureResult AdaptiveSimpson(const std::function<double(double)>& f,
                                 double a, double b,
                                 const QuadratureOptions& options) {
  QuadratureResult out;
  if (a == b) return out;
  double sign = 1.0;
  if (a > b) {
    std::swap(a, b);
    sign = -1.0;
  }
  SimpsonState state;
  state.f = &f;
  state.max_depth = options.max_depth;
  const double fa = f(a);
  const double fb = f(b);
  const double m = 0.5 * (a + b);
  const double fm = f(m);
  state.evaluations = 3;
  const double whole = (b - a) / 6.0 * (fa + 4.0 * fm + fb);
  out.value = sign * SimpsonRecurse(&state, a, b, fa, fm, fb, whole,
                                    options.abs_tolerance, 0);
  out.error = state.error;
  out.evaluations = state.evaluations;
  return out;
}

namespace {
// 32 positive nodes/weights of the 64-point Gauss-Legendre rule on [-1, 1].
constexpr double kGL64Nodes[32] = {
    0.0243502926634244325089558, 0.0729931217877990394495429,
    0.1214628192961205544703765, 0.1696444204239928180373136,
    0.2174236437400070841496487, 0.2646871622087674163739642,
    0.3113228719902109561575127, 0.3572201583376681159504426,
    0.4022701579639916036957668, 0.4463660172534640879849477,
    0.4894031457070529574785263, 0.5312794640198945456580139,
    0.5718956462026340342838781, 0.6111553551723932502488530,
    0.6489654712546573398577612, 0.6852363130542332425635584,
    0.7198818501716108268489402, 0.7528199072605318966118638,
    0.7839723589433414076102205, 0.8132653151227975597419233,
    0.8406292962525803627516915, 0.8659993981540928197607834,
    0.8893154459951141058534040, 0.9105221370785028057563807,
    0.9295691721319395758214902, 0.9464113748584028160624815,
    0.9610087996520537189186141, 0.9733268277899109637418535,
    0.9833362538846259569312993, 0.9910133714767443207393824,
    0.9963401167719552793469245, 0.9993050417357721394569056};
constexpr double kGL64Weights[32] = {
    0.0486909570091397203833654, 0.0485754674415034269347991,
    0.0483447622348029571697695, 0.0479993885964583077281262,
    0.0475401657148303086622822, 0.0469681828162100173253263,
    0.0462847965813144172959532, 0.0454916279274181444797710,
    0.0445905581637565630601347, 0.0435837245293234533768279,
    0.0424735151236535890073398, 0.0412625632426235286101563,
    0.0399537411327203413866569, 0.0385501531786156291289625,
    0.0370551285402400460404151, 0.0354722132568823838106931,
    0.0338051618371416093915655, 0.0320579283548515535854675,
    0.0302346570724024788679741, 0.0283396726142594832275113,
    0.0263774697150546586716918, 0.0243527025687108733381776,
    0.0222701738083832541592983, 0.0201348231535302093723403,
    0.0179517157756973430850453, 0.0157260304760247193219660,
    0.0134630478967186425980608, 0.0111681394601311288185905,
    0.0088467598263639477230309, 0.0065044579689783628561174,
    0.0041470332605624676352875, 0.0017832807216964329472961};
}  // namespace

double GaussLegendre64(const std::function<double(double)>& f, double a,
                       double b) {
  const double center = 0.5 * (a + b);
  const double half = 0.5 * (b - a);
  NeumaierSum acc;
  for (int i = 0; i < 32; ++i) {
    const double dx = half * kGL64Nodes[i];
    acc.Add(kGL64Weights[i] * (f(center + dx) + f(center - dx)));
  }
  return half * acc.Total();
}

Result<double> IntegrateSegments(const std::function<double(double)>& f,
                                 const std::vector<double>& breaks,
                                 const QuadratureOptions& options) {
  if (breaks.size() < 2) {
    return Status::InvalidArgument("IntegrateSegments needs >= 2 breakpoints");
  }
  if (!std::is_sorted(breaks.begin(), breaks.end())) {
    return Status::InvalidArgument("IntegrateSegments breakpoints not sorted");
  }
  NeumaierSum acc;
  for (std::size_t i = 0; i + 1 < breaks.size(); ++i) {
    acc.Add(AdaptiveSimpson(f, breaks[i], breaks[i + 1], options).value);
  }
  return acc.Total();
}

double StableSum(const double* data, std::size_t n) {
  NeumaierSum acc;
  for (std::size_t i = 0; i < n; ++i) acc.Add(data[i]);
  return acc.Total();
}

double RelativeDiff(double a, double b, double floor) {
  const double scale = std::max({std::abs(a), std::abs(b), floor});
  return std::abs(a - b) / scale;
}

}  // namespace hdldp
