// A bounded multi-producer multi-consumer queue — the ingestion buffer
// of the aggregation service (service/aggregation_service.h).
//
// The service's robustness contract needs exactly three behaviours from
// its queues, so that is all this type provides:
//
//   * TryPush  — non-blocking admission. A full queue refuses the item,
//     which the caller accounts as load shedding; ingestion never
//     silently drops and never blocks the submitting thread.
//   * Push     — blocking admission (backpressure mode): the producer
//     waits for capacity instead of shedding.
//   * Pop      — blocking drain. Returns std::nullopt only once the
//     queue is closed *and* empty, so consumers drain every admitted
//     item before exiting — Close() is a flush barrier, not an abort.
//
// Everything is a mutex plus two condition variables over a deque. The
// service pops one report at a time and does real work per item
// (decode, dedup, fold), so a lock per operation is far below the
// noise floor; a lock-free ring would buy nothing but TSan suppression
// files.

#ifndef HDLDP_COMMON_MPMC_QUEUE_H_
#define HDLDP_COMMON_MPMC_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace hdldp {

/// \brief Bounded MPMC queue; all operations are thread-safe.
template <typename T>
class BoundedQueue {
 public:
  /// Creates a queue admitting at most `capacity` (> 0) items.
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// \brief Admits `item` iff there is capacity right now. Returns false
  /// (leaving `item` moved-from only on success) when full or closed —
  /// the caller sheds the item and accounts for it.
  bool TryPush(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// \brief Admits `item`, waiting for capacity (backpressure). Returns
  /// false only if the queue is closed before space opens up.
  bool Push(T&& item) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      space_.wait(lock,
                  [this] { return closed_ || items_.size() < capacity_; });
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// \brief Removes and returns the oldest item, waiting while the queue
  /// is empty. Returns std::nullopt once the queue is closed and fully
  /// drained.
  std::optional<T> Pop() {
    std::optional<T> item;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
      if (items_.empty()) return std::nullopt;
      item.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    space_.notify_one();
    return item;
  }

  /// \brief Closes the queue: pushes start failing immediately, pops
  /// drain the backlog then return std::nullopt. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
    space_.notify_all();
  }

  /// Items currently queued (racy by nature; for stats/tests only).
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::condition_variable space_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace hdldp

#endif  // HDLDP_COMMON_MPMC_QUEUE_H_
