// A reusable worker pool with a deterministic parallel-for.
//
// The simulation pipeline and the experiment runner previously spawned
// fresh std::threads on every call; the figure benches make hundreds of
// such calls, so thread creation became a measurable fixed cost. The pool
// here is created once (usually via ThreadPool::Shared()) and reused.
//
// Determinism: ParallelFor(begin, end, fn) promises only that fn(i) runs
// exactly once for every i, on some thread. Callers get reproducible
// results by making each index's work self-contained — own RNG stream,
// own output slot — and reducing the slots in index order afterwards.
// Every parallel site in hdldp follows that pattern, which is why results
// are identical for any worker count, including zero workers (the calling
// thread always participates, so a pool of size one degrades to a plain
// serial loop and nested ParallelFor calls cannot deadlock).

#ifndef HDLDP_COMMON_THREAD_POOL_H_
#define HDLDP_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hdldp {

/// \brief Fixed-size worker pool; thread-safe, reusable across calls.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (0 is allowed: every ParallelFor then
  /// runs entirely on the calling thread).
  explicit ThreadPool(std::size_t num_threads);

  /// Joins all workers; outstanding ParallelFor calls must have returned.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of pool worker threads (callers add themselves on top).
  std::size_t num_threads() const { return threads_.size(); }

  /// \brief The process-wide pool, sized to the hardware concurrency
  /// minus one (the calling thread participates in every ParallelFor, so
  /// total parallelism equals the hardware concurrency). Created on first
  /// use, joined at process exit.
  static ThreadPool& Shared();

  /// \brief Enqueues one task for execution on a pool worker and returns
  /// immediately. Tasks run in enqueue order relative to each other (one
  /// shared FIFO) but interleave with ParallelFor helper tasks. A task
  /// may run for the pool's whole lifetime — the aggregation service
  /// Posts one ingestion loop per worker of a dedicated pool — but a
  /// long-lived task permanently occupies its worker, so never Post such
  /// loops on Shared(). Tasks must not throw; tasks still queued when
  /// the destructor runs are executed before shutdown completes.
  ///
  /// REQUIRES: num_threads() > 0 (with no workers nothing would ever run
  /// the task; ParallelFor's degenerate serial mode has no analogue for
  /// fire-and-forget work).
  void Post(std::function<void()> task);

  /// \brief Runs fn(i) exactly once for every i in [begin, end), using at
  /// most `max_concurrency` threads in total (calling thread included;
  /// 0 means pool size + 1). Blocks until every index has completed.
  ///
  /// fn must not throw. Reentrant: fn may itself call ParallelFor on the
  /// same pool — the inner call's indices are then drained by the threads
  /// already inside the outer call, never waiting on queue capacity.
  void ParallelFor(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t)>& fn,
                   std::size_t max_concurrency = 0);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable wake_workers_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
};

}  // namespace hdldp

#endif  // HDLDP_COMMON_THREAD_POOL_H_
