#include "common/rng.h"

#include <bit>
#include <cassert>
#include <cmath>

namespace hdldp {

std::uint64_t SplitMix64(std::uint64_t* x) {
  std::uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng Rng::Fork() { return Rng(Next()); }

std::uint64_t Rng::UniformInt(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's rejection method: unbiased and branch-light.
  std::uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

std::int64_t Rng::Poisson(double mean) {
  assert(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    const double limit = std::exp(-mean);
    double product = UniformDouble();
    std::int64_t count = 0;
    while (product > limit) {
      ++count;
      product *= UniformDouble();
    }
    return count;
  }
  // Normal approximation with continuity correction; the generators only
  // need the right mean/variance/shape at large lambda.
  const double draw = Gaussian(mean, std::sqrt(mean));
  return draw < 0.0 ? 0 : static_cast<std::int64_t>(std::floor(draw + 0.5));
}

void Rng::SampleWithoutReplacement(std::size_t d, std::size_t m,
                                   std::vector<std::uint32_t>* out) {
  assert(m <= d);
  // Floyd's algorithm: O(m) expected time, no O(d) scratch. The membership
  // probe over the freshly appended suffix is O(m^2) worst case, which is
  // fine for the m <= d <= a few thousand regimes hdldp runs at; callers
  // sampling m == d get the fast path below.
  const std::size_t base = out->size();
  if (m == d) {
    for (std::size_t j = 0; j < d; ++j) {
      out->push_back(static_cast<std::uint32_t>(j));
    }
    return;
  }
  for (std::size_t j = d - m; j < d; ++j) {
    const auto candidate =
        static_cast<std::uint32_t>(UniformInt(static_cast<std::uint64_t>(j) + 1));
    bool seen = false;
    for (std::size_t k = base; k < out->size(); ++k) {
      if ((*out)[k] == candidate) {
        seen = true;
        break;
      }
    }
    out->push_back(seen ? static_cast<std::uint32_t>(j) : candidate);
  }
}

void Rng::SampleWithoutReplacementBatch(std::size_t d, std::size_t m,
                                        std::size_t count, bool sorted,
                                        BatchSamplerScratch* scratch,
                                        std::vector<std::uint32_t>* out) {
  assert(m <= d);
  out->reserve(out->size() + m * count);
  if (m == d) {
    // No draws, matching the scalar fast path; 0..d-1 is already sorted.
    for (std::size_t u = 0; u < count; ++u) {
      for (std::size_t j = 0; j < d; ++j) {
        out->push_back(static_cast<std::uint32_t>(j));
      }
    }
    return;
  }
  const std::size_t words = (d + 63) / 64;
  if (scratch->mark_bits.size() < words) {
    scratch->mark_bits.resize(words, 0);  // New words start cleared.
  }
  std::uint64_t* bits = scratch->mark_bits.data();
  for (std::size_t u = 0; u < count; ++u) {
    const std::size_t base = out->size();
    std::size_t lo_word = words;
    std::size_t hi_word = 0;
    // Floyd's algorithm, draw-for-draw identical to
    // SampleWithoutReplacement: the membership test's outcome is the
    // same whether it probes the appended suffix or the bitmask, so
    // UniformInt sees the same bound sequence. The fallback pick j can
    // never be set already (earlier iterations only pick values < j).
    for (std::size_t j = d - m; j < d; ++j) {
      const auto candidate = static_cast<std::uint32_t>(
          UniformInt(static_cast<std::uint64_t>(j) + 1));
      const bool seen = (bits[candidate >> 6] >> (candidate & 63)) & 1u;
      const std::uint32_t pick =
          seen ? static_cast<std::uint32_t>(j) : candidate;
      const std::size_t word = pick >> 6;
      bits[word] |= std::uint64_t{1} << (pick & 63);
      lo_word = std::min(lo_word, word);
      hi_word = std::max(hi_word, word);
      if (!sorted) out->push_back(pick);
    }
    if (sorted) {
      // Emit the m set bits ascending — sortedness falls out of the
      // walk, never from a comparison sort (whose data-dependent
      // branches mispredict on random picks). Each word is cleared as
      // it is consumed so the mask is ready for the next user; only the
      // word range the picks landed in is touched, and the walk stops
      // at the m-th bit.
      std::size_t emitted = 0;
      for (std::size_t w = lo_word; w <= hi_word && emitted < m; ++w) {
        std::uint64_t word = bits[w];
        bits[w] = 0;
        while (word != 0) {
          const unsigned bit = static_cast<unsigned>(std::countr_zero(word));
          word &= word - 1;
          out->push_back(static_cast<std::uint32_t>((w << 6) + bit));
          ++emitted;
        }
      }
    } else {
      for (std::size_t k = base; k < out->size(); ++k) {
        const std::uint32_t pick = (*out)[k];
        bits[pick >> 6] &= ~(std::uint64_t{1} << (pick & 63));
      }
    }
  }
}

}  // namespace hdldp
