// CRC32C (Castagnoli) — the payload checksum of the fault-tolerance
// layer.
//
// Shard files (data/shard.h, format v2) carry one CRC32C per chunk so
// bit rot and torn writes are detected on every read, and checkpoint
// files (protocol/snapshot.h) frame every record with one so a crash
// mid-append degrades to a shorter-but-valid file instead of a corrupt
// one. The implementation is portable table-driven slicing-by-8 — no
// SSE4.2 dependency, identical values on every platform, ~multiple
// GB/s, which is plenty next to the mmap read it guards.

#ifndef HDLDP_COMMON_CRC32C_H_
#define HDLDP_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace hdldp {

/// \brief Extends a running CRC32C with `len` bytes. Pass the previous
/// call's return value to checksum a stream incrementally; the result is
/// identical to one Crc32c call over the concatenated bytes.
std::uint32_t Crc32cExtend(std::uint32_t crc, const void* data,
                           std::size_t len);

/// \brief CRC32C of one contiguous buffer.
inline std::uint32_t Crc32c(const void* data, std::size_t len) {
  return Crc32cExtend(0, data, len);
}

}  // namespace hdldp

#endif  // HDLDP_COMMON_CRC32C_H_
