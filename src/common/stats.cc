#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/math.h"

namespace hdldp {

RunningMoments::RunningMoments()
    : min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

void RunningMoments::Add(double x) {
  // Pébay's single-pass update of the first four central moments.
  const double n1 = static_cast<double>(n_);
  ++n_;
  const double n = static_cast<double>(n_);
  const double delta = x - mean_;
  const double delta_n = delta / n;
  const double delta_n2 = delta_n * delta_n;
  const double term1 = delta * delta_n * n1;
  mean_ += delta_n;
  m4_ += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * m2_ -
         4.0 * delta_n * m3_;
  m3_ += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * m2_;
  m2_ += term1;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningMoments::Merge(const RunningMoments& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double n = na + nb;
  const double delta = other.mean_ - mean_;
  const double delta2 = delta * delta;
  const double delta3 = delta2 * delta;
  const double delta4 = delta2 * delta2;
  const double m2 = m2_ + other.m2_ + delta2 * na * nb / n;
  const double m3 = m3_ + other.m3_ +
                    delta3 * na * nb * (na - nb) / (n * n) +
                    3.0 * delta * (na * other.m2_ - nb * m2_) / n;
  const double m4 =
      m4_ + other.m4_ +
      delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n) +
      6.0 * delta2 * (na * na * other.m2_ + nb * nb * m2_) / (n * n) +
      4.0 * delta * (na * other.m3_ - nb * m3_) / n;
  mean_ += delta * nb / n;
  m2_ = m2;
  m3_ = m3;
  m4_ = m4;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningMoments::Variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningMoments::PopulationVariance() const {
  return n_ < 1 ? 0.0 : m2_ / static_cast<double>(n_);
}

double RunningMoments::StdDev() const { return std::sqrt(Variance()); }

double RunningMoments::Skewness() const {
  if (n_ < 2 || m2_ <= 0.0) return 0.0;
  const double n = static_cast<double>(n_);
  return std::sqrt(n) * m3_ / std::pow(m2_, 1.5);
}

double RunningMoments::ExcessKurtosis() const {
  if (n_ < 2 || m2_ <= 0.0) return 0.0;
  const double n = static_cast<double>(n_);
  return n * m4_ / (m2_ * m2_) - 3.0;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {}

Result<Histogram> Histogram::Create(double lo, double hi, std::size_t bins) {
  if (!(lo < hi)) {
    return Status::InvalidArgument("Histogram requires lo < hi");
  }
  if (bins == 0) {
    return Status::InvalidArgument("Histogram requires bins > 0");
  }
  return Histogram(lo, hi, bins);
}

void Histogram::Add(double x) {
  if (std::isnan(x)) {
    // NaN is neither below nor above the range; count it with the
    // overflow tally so TotalCount stays consistent (and the index
    // computation below never sees it).
    ++overflow_;
    return;
  }
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // x == hi - ulp edge.
  ++counts_[idx];
}

double Histogram::BinCenter(std::size_t i) const {
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

std::int64_t Histogram::TotalCount() const {
  std::int64_t total = underflow_ + overflow_;
  for (const auto c : counts_) total += c;
  return total;
}

double Histogram::DensityAt(std::size_t i) const {
  const std::int64_t total = TotalCount();
  if (total == 0) return 0.0;
  return static_cast<double>(counts_[i]) /
         (static_cast<double>(total) * width_);
}

std::vector<double> Histogram::Densities() const {
  std::vector<double> out(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) out[i] = DensityAt(i);
  return out;
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return StableSum(xs.data(), xs.size()) / static_cast<double>(xs.size());
}

double SampleVariance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double mean = Mean(xs);
  NeumaierSum acc;
  for (const double x : xs) acc.Add(Sq(x - mean));
  return acc.Total() / static_cast<double>(xs.size() - 1);
}

Result<double> QuantileOfSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) {
    return Status::InvalidArgument("QuantileOfSorted: empty input");
  }
  if (q < 0.0 || q > 1.0) {
    return Status::InvalidArgument("QuantileOfSorted: q outside [0, 1]");
  }
  if (!std::is_sorted(sorted.begin(), sorted.end())) {
    return Status::InvalidArgument("QuantileOfSorted: input not sorted");
  }
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace hdldp
