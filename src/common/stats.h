// Streaming and batch statistics.
//
// The evaluation harness estimates empirical pdfs of LDP deviations
// (Figures 2-3) and summary moments over millions of reports; this header
// provides numerically stable single-pass accumulators and a fixed-bin
// histogram whose normalized counts approximate a density.

#ifndef HDLDP_COMMON_STATS_H_
#define HDLDP_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/result.h"

namespace hdldp {

/// \brief Single-pass mean/variance/skewness/kurtosis (Welford/Pébay).
class RunningMoments {
 public:
  /// Folds one observation into the accumulator.
  void Add(double x);

  /// Merges another accumulator (parallel reduction support).
  void Merge(const RunningMoments& other);

  /// Number of observations so far.
  std::int64_t count() const { return n_; }
  /// Sample mean; 0 when empty.
  double Mean() const { return mean_; }
  /// Unbiased sample variance; 0 when count < 2.
  double Variance() const;
  /// Population variance (divide by n); 0 when empty.
  double PopulationVariance() const;
  /// Sample standard deviation.
  double StdDev() const;
  /// Standardized third moment; 0 when undefined.
  double Skewness() const;
  /// Excess kurtosis; 0 when undefined.
  double ExcessKurtosis() const;
  /// Smallest observation; +inf when empty.
  double Min() const { return min_; }
  /// Largest observation; -inf when empty.
  double Max() const { return max_; }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double m3_ = 0.0;
  double m4_ = 0.0;
  double min_;
  double max_;

 public:
  RunningMoments();
};

/// \brief Equal-width histogram over [lo, hi) usable as a density estimate.
///
/// Out-of-range observations are counted in underflow/overflow tallies so
/// `TotalCount` always matches the number of Add calls.
class Histogram {
 public:
  /// Creates a histogram with `bins` equal-width bins spanning [lo, hi).
  static Result<Histogram> Create(double lo, double hi, std::size_t bins);

  /// Folds one observation.
  void Add(double x);

  /// Center of bin i.
  double BinCenter(std::size_t i) const;
  /// Width of each bin.
  double bin_width() const { return width_; }
  /// Number of bins.
  std::size_t num_bins() const { return counts_.size(); }
  /// Raw count of bin i.
  std::int64_t Count(std::size_t i) const { return counts_[i]; }
  /// Observations below lo / at-or-above hi.
  std::int64_t underflow() const { return underflow_; }
  std::int64_t overflow() const { return overflow_; }
  /// All observations ever added (in-range + out-of-range).
  std::int64_t TotalCount() const;

  /// Density estimate at bin i: count / (total * width). In-range mass
  /// integrates to (in-range count / total count).
  double DensityAt(std::size_t i) const;

  /// Densities for all bins.
  std::vector<double> Densities() const;

 private:
  Histogram(double lo, double hi, std::size_t bins);

  double lo_;
  double hi_;
  double width_;
  std::vector<std::int64_t> counts_;
  std::int64_t underflow_ = 0;
  std::int64_t overflow_ = 0;
};

/// \brief Sample mean of a range; 0 for an empty range.
double Mean(const std::vector<double>& xs);

/// \brief Unbiased sample variance; 0 when n < 2.
double SampleVariance(const std::vector<double>& xs);

/// \brief q-th quantile (linear interpolation) of a *sorted* range.
/// Requires 0 <= q <= 1 and a non-empty, ascending `sorted`.
Result<double> QuantileOfSorted(const std::vector<double>& sorted, double q);

}  // namespace hdldp

#endif  // HDLDP_COMMON_STATS_H_
