// Numerical building blocks shared across hdldp.
//
// The analytical framework (src/framework) is mostly closed-form Gaussian
// algebra plus one-dimensional quadrature over perturbation densities; this
// header collects the primitives: the standard normal family, adaptive
// Simpson and fixed-order Gauss-Legendre integration, and compensated
// summation for long reductions.

#ifndef HDLDP_COMMON_MATH_H_
#define HDLDP_COMMON_MATH_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "common/result.h"

namespace hdldp {

inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kSqrt2 = 1.41421356237309504880;
inline constexpr double kSqrt2Pi = 2.50662827463100050242;

/// \brief x².
constexpr double Sq(double x) { return x * x; }

/// \brief x clamped to [lo, hi].
constexpr double Clamp(double x, double lo, double hi) {
  return x < lo ? lo : (x > hi ? hi : x);
}

/// \brief Density of N(0, 1) at x.
double NormalPdf(double x);

/// \brief Density of N(mean, stddev²) at x. Requires stddev > 0.
double NormalPdf(double x, double mean, double stddev);

/// \brief P(N(0,1) <= x), accurate in both tails (erfc-based).
double NormalCdf(double x);

/// \brief P(N(mean, stddev²) <= x). Requires stddev > 0.
double NormalCdf(double x, double mean, double stddev);

/// \brief P(lo <= N(mean, stddev²) <= hi), computed tail-stably.
double NormalIntervalProb(double lo, double hi, double mean, double stddev);

/// \brief Inverse of NormalCdf on (0, 1); Acklam's rational approximation
/// polished with one Halley step (|rel err| < 1e-13 on (1e-300, 1-1e-16)).
double NormalQuantile(double p);

/// \brief Result of a quadrature call.
struct QuadratureResult {
  /// Integral estimate.
  double value = 0.0;
  /// Estimated absolute error.
  double error = 0.0;
  /// Number of integrand evaluations spent.
  std::size_t evaluations = 0;
};

/// Options for AdaptiveSimpson.
struct QuadratureOptions {
  /// Target absolute error for the whole interval.
  double abs_tolerance = 1e-10;
  /// Hard recursion depth cap; beyond it the local estimate is accepted.
  int max_depth = 40;
};

/// \brief Adaptive Simpson integration of `f` over [a, b].
///
/// Handles a > b by sign flip. The integrand must be finite on [a, b];
/// perturbation densities in hdldp are bounded and piecewise smooth, for
/// which adaptive Simpson converges quickly between breakpoints (callers
/// split at known discontinuities, see mech/*).
QuadratureResult AdaptiveSimpson(const std::function<double(double)>& f,
                                 double a, double b,
                                 const QuadratureOptions& options = {});

/// \brief Fixed 64-point Gauss-Legendre quadrature over [a, b]; exact for
/// polynomials up to degree 127, used where the integrand is smooth.
double GaussLegendre64(const std::function<double(double)>& f, double a,
                       double b);

/// \brief Integrates `f` over the union of [breaks[i], breaks[i+1]]
/// segments with AdaptiveSimpson per segment. `breaks` must be sorted.
Result<double> IntegrateSegments(const std::function<double(double)>& f,
                                 const std::vector<double>& breaks,
                                 const QuadratureOptions& options = {});

/// \brief Neumaier (improved Kahan) compensated accumulator.
///
/// Add() is defined inline: aggregation loops call it once per ingested
/// value, and the out-of-line call was measurable against the ~5 flops of
/// work (see bench_micro Ingest*).
class NeumaierSum {
 public:
  /// Adds one term.
  void Add(double x) {
    const double t = sum_ + x;
    if (Abs(sum_) >= Abs(x)) {
      compensation_ += (sum_ - t) + x;
    } else {
      compensation_ += (x - t) + sum_;
    }
    sum_ = t;
  }
  /// Folds another accumulator in (parallel-reduction support).
  void Merge(const NeumaierSum& other) { Add(other.Total()); }

  /// \brief Merges another accumulator's full (sum, compensation) state,
  /// not just its rounded Total(): the raw sums combine through a
  /// branch-free TwoSum whose residual is captured *exactly* into the
  /// compensation channel, so no information is rounded away at the
  /// merge boundary itself.
  ///
  /// Contract (pinned by tests/test_merge_laws.cc):
  ///   * the zero state is an exact two-sided identity, bit for bit;
  ///   * the operation is bit-commutative (TwoSum's residual is a
  ///     symmetric sum of two exact halves, and float addition
  ///     commutes);
  ///   * whenever every addition is exact (the compensation channel
  ///     stays zero — e.g. dyadic values with small exponent spread),
  ///     the full state after any merge order is bit-identical to the
  ///     single accumulator that folded all the underlying values;
  ///   * for general data the compensation additions round, so only a
  ///     fixed merge order is bit-reproducible — which is why every
  ///     consumer (the reduction tree, the service's group/pane merge)
  ///     pins its merge order — and Total() stays within an ulp or two
  ///     of the single fold.
  ///
  /// Merge() (above) collapses the other side's compensation first and
  /// is frozen into the reduction tree's golden estimates; MergeState is
  /// the primitive for state that outlives one process — service pane
  /// aggregates, snapshots — where a fold split across workers or across
  /// a crash/restore boundary must publish the same bits.
  void MergeState(const NeumaierSum& other) {
    // TwoSum (Knuth): s + e == sum_ + other.sum_ exactly, e representable.
    const double a = sum_;
    const double b = other.sum_;
    const double s = a + b;
    const double a_part = s - b;
    const double b_part = s - a_part;
    const double e = (a - a_part) + (b - b_part);
    sum_ = s;
    compensation_ = (compensation_ + other.compensation_) + e;
  }

  /// Current compensated total.
  double Total() const { return sum_ + compensation_; }

  /// Exact internal state, for bit-identical checkpoint serialization
  /// (protocol/snapshot). Total() alone loses the compensation term, so a
  /// resumed run would drift off the uninterrupted run by an ulp; these
  /// round-trip the full state instead.
  double RawSum() const { return sum_; }
  double Compensation() const { return compensation_; }
  void RestoreRaw(double sum, double compensation) {
    sum_ = sum;
    compensation_ = compensation;
  }

 private:
  // Branch-free |x| without pulling <cmath> into this low-level header.
  static double Abs(double x) { return x < 0.0 ? -x : x; }

  double sum_ = 0.0;
  double compensation_ = 0.0;
};

/// \brief Compensated sum of a range.
double StableSum(const double* data, std::size_t n);

/// \brief Relative difference |a-b| / max(|a|, |b|, floor).
double RelativeDiff(double a, double b, double floor = 1e-300);

}  // namespace hdldp

#endif  // HDLDP_COMMON_MATH_H_
