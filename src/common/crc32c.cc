#include "common/crc32c.h"

#include <cstring>

namespace hdldp {
namespace {

// Reflected Castagnoli polynomial.
constexpr std::uint32_t kPoly = 0x82F63B78u;

// Slicing-by-8 lookup tables: table[0] is the classic byte-at-a-time
// table, table[k] advances a byte through k additional zero bytes.
struct Crc32cTables {
  std::uint32_t t[8][256];

  Crc32cTables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = t[0][i];
      for (int k = 1; k < 8; ++k) {
        crc = t[0][crc & 0xFFu] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

std::uint32_t Crc32cExtend(std::uint32_t crc, const void* data,
                           std::size_t len) {
  const auto& t = Tables().t;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  // Byte-at-a-time until 8-byte alignment, then slicing-by-8.
  while (len > 0 && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
    crc = t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
    --len;
  }
  while (len >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    // Little-endian fold: the low 32 bits absorb the running CRC. On a
    // big-endian host this byte order would differ; hdldp's on-disk
    // formats are little-endian-only already (data/shard.h).
    word ^= crc;
    crc = t[7][word & 0xFFu] ^ t[6][(word >> 8) & 0xFFu] ^
          t[5][(word >> 16) & 0xFFu] ^ t[4][(word >> 24) & 0xFFu] ^
          t[3][(word >> 32) & 0xFFu] ^ t[2][(word >> 40) & 0xFFu] ^
          t[1][(word >> 48) & 0xFFu] ^ t[0][(word >> 56) & 0xFFu];
    p += 8;
    len -= 8;
  }
  while (len > 0) {
    crc = t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
    --len;
  }
  return ~crc;
}

}  // namespace hdldp
