// Deterministic random number generation for hdldp.
//
// All randomized components take an explicit Rng so every experiment in the
// repository is reproducible from a single seed. The engine is xoshiro256++
// (public-domain, Blackman & Vigna) seeded via SplitMix64, which gives
// high-quality 64-bit output at ~1ns/draw — perturbation loops in the
// benchmark harness draw hundreds of millions of variates.

#ifndef HDLDP_COMMON_RNG_H_
#define HDLDP_COMMON_RNG_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <cstddef>
#include <limits>
#include <vector>

namespace hdldp {

/// \brief Reusable scratch of Rng::SampleWithoutReplacementBatch: the
/// d-bit membership bitmask Floyd's probe tests, hoisted out of the
/// per-user loop so a chunk of thousands of users pays one allocation.
/// Bit j set means dimension j is already sampled for the user currently
/// being drawn; the sampler leaves every bit cleared again between
/// users (the sorted emission clears as it walks), so the mask never
/// needs a wipe. Cheap to default-construct; one instance per worker
/// thread.
struct BatchSamplerScratch {
  std::vector<std::uint64_t> mark_bits;
};

/// \brief Deterministic pseudo-random generator with distribution helpers.
///
/// Satisfies the C++ UniformRandomBitGenerator concept, so it can also be
/// handed to <random> adaptors, though hdldp uses its own samplers to keep
/// results bit-stable across standard-library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the engine. Two Rng instances with the same seed produce
  /// identical streams on every platform.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// \brief Next raw 64-bit output (xoshiro256++).
  ///
  /// Inline (like the other single-draw samplers below): perturbation
  /// loops draw hundreds of millions of variates and the out-of-line
  /// call cost was visible in bench_micro's ingestion throughput.
  result_type Next() {
    const std::uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  result_type operator()() { return Next(); }

  /// \brief Derives an independent child generator.
  ///
  /// Useful for giving each simulated user or worker its own stream without
  /// correlations between streams.
  Rng Fork();

  /// \brief Reconstructs a generator from a raw 256-bit xoshiro state (as
  /// produced by ExportState). Used by RngLanes to hand a lane's stream to
  /// scalar samplers and take it back; the Gaussian pair cache is NOT part
  /// of the exported state (no lane sampler draws Gaussians).
  static Rng FromState(const std::uint64_t state[4]) {
    Rng rng(0);
    for (int w = 0; w < 4; ++w) rng.s_[w] = state[w];
    return rng;
  }

  /// \brief Copies the raw 256-bit xoshiro state into `out`.
  void ExportState(std::uint64_t out[4]) const {
    for (int w = 0; w < 4; ++w) out[w] = s_[w];
  }

  /// \brief Uniform double in [0, 1) with 53 random bits.
  double UniformDouble() {
    // 53 high bits -> uniform in [0, 1) on the representable grid.
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// \brief Uniform double in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi) {
    assert(lo <= hi);
    return lo + (hi - lo) * UniformDouble();
  }

  /// \brief Uniform integer in [0, bound), bias-free. Requires bound > 0.
  std::uint64_t UniformInt(std::uint64_t bound);

  /// \brief True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return UniformDouble() < p;
  }

  /// \brief Exponential variate with the given rate (mean 1/rate).
  double Exponential(double rate) {
    assert(rate > 0.0);
    // -log(1-U) keeps the argument strictly positive since U in [0,1).
    return -std::log1p(-UniformDouble()) / rate;
  }

  /// \brief Zero-mean Laplace variate with scale b (variance 2b²).
  double Laplace(double scale) {
    assert(scale > 0.0);
    const double u = UniformDouble() - 0.5;
    // Branch-free form of u < 0 ? scale * log1p(2u) : -scale * log1p(-2u):
    // both arms evaluate log1p at exactly -2|u|, so only the sign factor
    // is selected (indexed, never a mispredicted 50/50 branch). Values
    // are bit-identical to the branchy form.
    const double sign_sel[2] = {-scale, scale};
    return sign_sel[u < 0.0] * std::log1p(-2.0 * std::abs(u));
  }

  /// \brief Standard normal variate (Marsaglia polar method, cached pair).
  double Gaussian();

  /// \brief Normal variate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// \brief Poisson variate. Knuth multiplication below mean 30, else
  /// normal approximation with continuity correction (adequate for the
  /// dataset generators, where only the shape of the marginal matters).
  std::int64_t Poisson(double mean);

  /// \brief Geometric number of failures before first success, support
  /// {0, 1, ...}, success probability p in (0, 1].
  std::int64_t Geometric(double p) {
    assert(p > 0.0 && p <= 1.0);
    if (p == 1.0) return 0;
    const double u = UniformDouble();
    return static_cast<std::int64_t>(
        std::floor(std::log1p(-u) / std::log1p(-p)));
  }

  /// \brief Samples `m` distinct indices from {0, ..., d-1} (Floyd's
  /// algorithm), appended to *out in unspecified order. Requires m <= d.
  void SampleWithoutReplacement(std::size_t d, std::size_t m,
                                std::vector<std::uint32_t>* out);

  /// \brief Draws `count` independent m-of-d samples in one call (Floyd
  /// per user), appending each user's `m` distinct indices to *out —
  /// sorted ascending when `sorted` is set, in Floyd draw order
  /// otherwise. The RNG consumes exactly the draws of `count` successive
  /// SampleWithoutReplacement calls (ordering happens after the draws),
  /// so the stream position afterwards is identical; only the output
  /// order differs. `scratch` hoists the membership bitmask out of the
  /// per-user loop: the probe is an O(1) bit test instead of the scalar
  /// path's O(m) suffix scan, and the sorted order falls out of walking
  /// the set bits ascending rather than a comparison sort — which is
  /// what makes chunk-granular batch sampling cheap at large m.
  /// Requires m <= d.
  void SampleWithoutReplacementBatch(std::size_t d, std::size_t m,
                                     std::size_t count, bool sorted,
                                     BatchSamplerScratch* scratch,
                                     std::vector<std::uint32_t>* out);

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

/// \brief SplitMix64 step: mixes `x` into the next state and returns a
/// 64-bit output. Used for seeding and for hashing seeds together.
std::uint64_t SplitMix64(std::uint64_t* x);

/// \brief Versioned RNG stream contract of a pipeline run.
///
/// kV1Scalar: one scalar xoshiro256++ stream (53-bit uniforms, libm
/// transforms) — the pre-lane-era contract, preserved so recorded runs
/// keep their exact outputs. kV2Lanes: four lane streams per 4096-user
/// chunk (52-bit uniforms, deterministic lane log), one lane span per
/// user on the sampled (m < d) path. kV3Batched: identical to kV2Lanes
/// on dense (m == d) runs; on sampled runs the chunk's dimension draws
/// happen up front (sorted per user) and many users' expanded entries
/// pack into one long lane span — the fast sampled path, still invariant
/// to thread count and to SIMD-vs-scalar builds. Full contract
/// documentation in common/rng_lanes.h. A seed means different draws
/// under the schemes by design; each scheme guarantees only that its own
/// outputs never change.
enum class SeedScheme {
  kV1Scalar = 1,
  kV2Lanes = 2,
  kV3Batched = 3,
};

/// \brief Independent stream seed of chunk `chunk` under `seed`.
///
/// The parallel pipelines decompose a population into fixed-size user
/// chunks; chunk c always draws from Rng(ChunkSeed(seed, c)) (or the lane
/// generator seeded with it), which is what makes estimates a pure
/// function of (data, seed) regardless of the worker count.
inline std::uint64_t ChunkSeed(std::uint64_t seed, std::size_t chunk) {
  std::uint64_t mix =
      seed + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(chunk) + 1);
  return SplitMix64(&mix);
}

}  // namespace hdldp

#endif  // HDLDP_COMMON_RNG_H_
