// Deterministic 4-lane math for the lane sampling path.
//
// This header provides the building blocks the v2 lane samplers
// (SeedScheme::kV2Lanes) are written in:
//
//   * Vec / Mask      one double (or predicate) per lane, with an
//                     operation set restricted to exactly-rounded IEEE-754
//                     arithmetic and pure bit manipulation;
//   * LogVec          a lanewise natural log built only from those
//                     operations (fdlibm e_log's reduction and minimax
//                     series, ~1-2 ulp — sampling-grade accuracy);
//   * LogScalar       the one-value reference implementation of the same
//                     operation sequence, always compiled.
//
// SIMD builds (translation units compiled with AVX2, see the top-level
// CMakeLists; suppressed by HDLDP_DISABLE_SIMD) back Vec with a __m256d
// and AVX2 intrinsics; portable builds back it with double[4] loops.
// Because every operation in the set is exactly rounded (add/sub/mul/div,
// floor) or bit-exact (min/max, compare + blend, abs, negate), any
// sampler body composed from them produces bit-identical lanes on every
// build — tests/test_rng_lanes.cc pins the kernels, and the no-SIMD CI
// job re-runs the same pinned streams on the portable backend.

#ifndef HDLDP_COMMON_LANE_MATH_H_
#define HDLDP_COMMON_LANE_MATH_H_

#include <bit>
#include <cstdint>
#include <limits>

#if defined(__AVX2__) && !defined(HDLDP_DISABLE_SIMD)
#define HDLDP_SIMD_AVX2 1
#include <immintrin.h>
#else
#define HDLDP_SIMD_AVX2 0
#endif

namespace hdldp {
namespace lanes {

/// Number of parallel lanes in every lane kernel.
inline constexpr std::size_t kLanes = 4;

// fdlibm e_log constants: ln2 split plus the minimax series for
// log(1+f) - f + f^2/2 over |s| <= 0.1716, s = f/(2+f).
inline constexpr double kLn2Hi = 6.93147180369123816490e-01;
inline constexpr double kLn2Lo = 1.90821492927058770002e-10;
inline constexpr double kLg1 = 6.666666666666735130e-01;
inline constexpr double kLg2 = 3.999999999940941908e-01;
inline constexpr double kLg3 = 2.857142874366239149e-01;
inline constexpr double kLg4 = 2.222219843214978396e-01;
inline constexpr double kLg5 = 1.818357216161805012e-01;
inline constexpr double kLg6 = 1.531383769920937332e-01;
inline constexpr double kLg7 = 1.479819860511658591e-01;
// Mantissa field of sqrt(2): mantissas at or above it renormalize to the
// [sqrt(2)/2, sqrt(2)) half-octave below.
inline constexpr std::uint64_t kSqrt2Mantissa = 0x6A09E667F3BCDULL;
inline constexpr std::uint64_t kMantissaMask = 0x000FFFFFFFFFFFFFULL;
// Magic constant for exact small-non-negative-integer -> double moves.
inline constexpr std::uint64_t kExpMagic = 0x4330000000000000ULL;
inline constexpr double kTwo52 = 4503599627370496.0;

/// \brief Scalar reference of the lane log: natural log of one normal
/// positive double (w == 0 returns -inf). Callers guarantee w >= 0 and
/// finite; hdldp's samplers feed w in [0, 1] on the 2^-52 uniform grid.
inline double LogScalar(double w) {
  const std::uint64_t ix = std::bit_cast<std::uint64_t>(w);
  const std::uint64_t exp = ix >> 52;
  const std::uint64_t man = ix & kMantissaMask;
  // Renormalize to z in [sqrt(2)/2, sqrt(2)): mantissas >= sqrt(2)'s drop
  // a half octave (adj = 1) so the series argument f stays small.
  const std::uint64_t adj = man >= kSqrt2Mantissa ? 1u : 0u;
  // exp + adj < 2^52, so the magic-constant move is exact and matches the
  // vector body operation for operation.
  const double kd =
      std::bit_cast<double>((exp + adj) | kExpMagic) - kTwo52 - 1023.0;
  const double z = std::bit_cast<double>(man | ((1023ULL - adj) << 52));
  const double f = z - 1.0;
  const double s = f / (2.0 + f);
  const double zz = s * s;
  const double w4 = zz * zz;
  const double t1 = w4 * (kLg2 + w4 * (kLg4 + w4 * kLg6));
  const double t2 = zz * (kLg1 + w4 * (kLg3 + w4 * (kLg5 + w4 * kLg7)));
  const double r = t2 + t1;
  const double hfsq = 0.5 * f * f;
  const double result =
      kd * kLn2Hi - ((hfsq - (s * (hfsq + r) + kd * kLn2Lo)) - f);
  return w == 0.0 ? -std::numeric_limits<double>::infinity() : result;
}

// ---------------------------------------------------------------------------
// Vec / Mask backends.
// ---------------------------------------------------------------------------

#if HDLDP_SIMD_AVX2

struct Vec {
  __m256d v;
};
struct Mask {
  __m256d m;
};

inline Vec Broadcast(double x) { return {_mm256_set1_pd(x)}; }
inline Vec Load(const double* p) { return {_mm256_loadu_pd(p)}; }
inline void Store(double* p, Vec a) { _mm256_storeu_pd(p, a.v); }
inline Vec operator+(Vec a, Vec b) { return {_mm256_add_pd(a.v, b.v)}; }
inline Vec operator-(Vec a, Vec b) { return {_mm256_sub_pd(a.v, b.v)}; }
inline Vec operator*(Vec a, Vec b) { return {_mm256_mul_pd(a.v, b.v)}; }
inline Vec operator/(Vec a, Vec b) { return {_mm256_div_pd(a.v, b.v)}; }
inline Vec Min(Vec a, Vec b) { return {_mm256_min_pd(a.v, b.v)}; }
inline Vec Max(Vec a, Vec b) { return {_mm256_max_pd(a.v, b.v)}; }
inline Mask Lt(Vec a, Vec b) { return {_mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ)}; }
/// m ? a : b, lanewise.
inline Vec Select(Mask m, Vec a, Vec b) {
  return {_mm256_blendv_pd(b.v, a.v, m.m)};
}
inline Vec Floor(Vec a) {
  return {_mm256_round_pd(a.v, _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC)};
}
inline Vec Abs(Vec a) {
  return {_mm256_andnot_pd(_mm256_set1_pd(-0.0), a.v)};
}
inline Vec Neg(Vec a) { return {_mm256_xor_pd(a.v, _mm256_set1_pd(-0.0))}; }

/// \brief Lanewise natural log; same operation sequence as LogScalar.
inline Vec LogVec(Vec w) {
  const __m256i ix = _mm256_castpd_si256(w.v);
  const __m256i exp = _mm256_srli_epi64(ix, 52);
  const __m256i man = _mm256_and_si256(
      ix, _mm256_set1_epi64x(static_cast<long long>(kMantissaMask)));
  // man >= kSqrt2Mantissa as a signed compare (both operands < 2^52);
  // the mask is 0 or -1, so subtracting it adds adj.
  const __m256i adj_mask = _mm256_cmpgt_epi64(
      man, _mm256_set1_epi64x(static_cast<long long>(kSqrt2Mantissa - 1)));
  const __m256i exp_adj = _mm256_sub_epi64(exp, adj_mask);
  const __m256d kd = _mm256_sub_pd(
      _mm256_sub_pd(
          _mm256_castsi256_pd(_mm256_or_si256(
              exp_adj, _mm256_set1_epi64x(static_cast<long long>(kExpMagic)))),
          _mm256_set1_pd(kTwo52)),
      _mm256_set1_pd(1023.0));
  const __m256i zexp = _mm256_slli_epi64(
      _mm256_add_epi64(_mm256_set1_epi64x(1023), adj_mask), 52);
  const __m256d z = _mm256_castsi256_pd(_mm256_or_si256(man, zexp));
  const __m256d f = _mm256_sub_pd(z, _mm256_set1_pd(1.0));
  const __m256d s = _mm256_div_pd(f, _mm256_add_pd(_mm256_set1_pd(2.0), f));
  const __m256d zz = _mm256_mul_pd(s, s);
  const __m256d w4 = _mm256_mul_pd(zz, zz);
  const __m256d t1 = _mm256_mul_pd(
      w4,
      _mm256_add_pd(
          _mm256_set1_pd(kLg2),
          _mm256_mul_pd(w4, _mm256_add_pd(_mm256_set1_pd(kLg4),
                                          _mm256_mul_pd(
                                              w4, _mm256_set1_pd(kLg6))))));
  const __m256d t2 = _mm256_mul_pd(
      zz,
      _mm256_add_pd(
          _mm256_set1_pd(kLg1),
          _mm256_mul_pd(
              w4,
              _mm256_add_pd(
                  _mm256_set1_pd(kLg3),
                  _mm256_mul_pd(
                      w4, _mm256_add_pd(_mm256_set1_pd(kLg5),
                                        _mm256_mul_pd(
                                            w4, _mm256_set1_pd(kLg7))))))));
  const __m256d r = _mm256_add_pd(t2, t1);
  const __m256d hfsq =
      _mm256_mul_pd(_mm256_set1_pd(0.5), _mm256_mul_pd(f, f));
  // kd*Hi - ((hfsq - (s*(hfsq+r) + kd*Lo)) - f), associated as in scalar.
  const __m256d inner =
      _mm256_add_pd(_mm256_mul_pd(s, _mm256_add_pd(hfsq, r)),
                    _mm256_mul_pd(kd, _mm256_set1_pd(kLn2Lo)));
  const __m256d result =
      _mm256_sub_pd(_mm256_mul_pd(kd, _mm256_set1_pd(kLn2Hi)),
                    _mm256_sub_pd(_mm256_sub_pd(hfsq, inner), f));
  // w == 0 -> -inf.
  const __m256d zero_mask = _mm256_cmp_pd(w.v, _mm256_setzero_pd(), _CMP_EQ_OQ);
  const __m256d neg_inf =
      _mm256_set1_pd(-std::numeric_limits<double>::infinity());
  return {_mm256_blendv_pd(result, neg_inf, zero_mask)};
}

#else  // !HDLDP_SIMD_AVX2

struct Vec {
  double v[kLanes];
};
struct Mask {
  bool m[kLanes];
};

inline Vec Broadcast(double x) {
  Vec r;
  for (std::size_t l = 0; l < kLanes; ++l) r.v[l] = x;
  return r;
}
inline Vec Load(const double* p) {
  Vec r;
  for (std::size_t l = 0; l < kLanes; ++l) r.v[l] = p[l];
  return r;
}
inline void Store(double* p, Vec a) {
  for (std::size_t l = 0; l < kLanes; ++l) p[l] = a.v[l];
}
inline Vec operator+(Vec a, Vec b) {
  Vec r;
  for (std::size_t l = 0; l < kLanes; ++l) r.v[l] = a.v[l] + b.v[l];
  return r;
}
inline Vec operator-(Vec a, Vec b) {
  Vec r;
  for (std::size_t l = 0; l < kLanes; ++l) r.v[l] = a.v[l] - b.v[l];
  return r;
}
inline Vec operator*(Vec a, Vec b) {
  Vec r;
  for (std::size_t l = 0; l < kLanes; ++l) r.v[l] = a.v[l] * b.v[l];
  return r;
}
inline Vec operator/(Vec a, Vec b) {
  Vec r;
  for (std::size_t l = 0; l < kLanes; ++l) r.v[l] = a.v[l] / b.v[l];
  return r;
}
// minpd/maxpd operand convention: the second operand wins ties (hdldp
// only feeds finite data, where the two conventions agree in value).
inline Vec Min(Vec a, Vec b) {
  Vec r;
  for (std::size_t l = 0; l < kLanes; ++l) {
    r.v[l] = a.v[l] < b.v[l] ? a.v[l] : b.v[l];
  }
  return r;
}
inline Vec Max(Vec a, Vec b) {
  Vec r;
  for (std::size_t l = 0; l < kLanes; ++l) {
    r.v[l] = a.v[l] > b.v[l] ? a.v[l] : b.v[l];
  }
  return r;
}
inline Mask Lt(Vec a, Vec b) {
  Mask r;
  for (std::size_t l = 0; l < kLanes; ++l) r.m[l] = a.v[l] < b.v[l];
  return r;
}
inline Vec Select(Mask m, Vec a, Vec b) {
  Vec r;
  for (std::size_t l = 0; l < kLanes; ++l) r.v[l] = m.m[l] ? a.v[l] : b.v[l];
  return r;
}
inline Vec Floor(Vec a) {
  Vec r;
  for (std::size_t l = 0; l < kLanes; ++l) r.v[l] = __builtin_floor(a.v[l]);
  return r;
}
inline Vec Abs(Vec a) {
  Vec r;
  for (std::size_t l = 0; l < kLanes; ++l) {
    r.v[l] = std::bit_cast<double>(std::bit_cast<std::uint64_t>(a.v[l]) &
                                   0x7FFFFFFFFFFFFFFFULL);
  }
  return r;
}
inline Vec Neg(Vec a) {
  Vec r;
  for (std::size_t l = 0; l < kLanes; ++l) {
    r.v[l] = std::bit_cast<double>(std::bit_cast<std::uint64_t>(a.v[l]) ^
                                   0x8000000000000000ULL);
  }
  return r;
}

inline Vec LogVec(Vec w) {
  Vec r;
  for (std::size_t l = 0; l < kLanes; ++l) r.v[l] = LogScalar(w.v[l]);
  return r;
}

#endif  // HDLDP_SIMD_AVX2

/// Min(Max(a, lo), hi) in the minpd/maxpd convention — the lane twin of
/// the scalar plan bodies' std::min(std::max(t, lo), hi).
inline Vec Clamp(Vec a, double lo, double hi) {
  return Min(Max(a, Broadcast(lo)), Broadcast(hi));
}

/// \brief Array form of LogVec (whatever backend this build selected).
inline void Log4(const double in[kLanes], double out[kLanes]) {
  Store(out, LogVec(Load(in)));
}

/// \brief Always-scalar array log: the bit-identity baseline Log4 is
/// tested against on SIMD builds.
inline void Log4Scalar(const double in[kLanes], double out[kLanes]) {
  for (std::size_t l = 0; l < kLanes; ++l) out[l] = LogScalar(in[l]);
}

}  // namespace lanes
}  // namespace hdldp

#endif  // HDLDP_COMMON_LANE_MATH_H_
