// Status: the error model used across hdldp.
//
// Library code never throws; fallible operations return a Status (or a
// Result<T>, see common/result.h). This mirrors the Arrow/RocksDB error
// idiom mandated by the project style guides.

#ifndef HDLDP_COMMON_STATUS_H_
#define HDLDP_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace hdldp {

/// Machine-readable category of a failure.
enum class StatusCode : int {
  kOk = 0,
  /// Caller passed an argument outside the documented contract.
  kInvalidArgument = 1,
  /// A numeric quantity left its valid domain (overflow, empty domain, ...).
  kOutOfRange = 2,
  /// The object is not in a state where the operation is allowed.
  kFailedPrecondition = 3,
  /// A lookup (mechanism name, dimension index, ...) found nothing.
  kNotFound = 4,
  /// An internal invariant was violated; indicates a bug in hdldp.
  kInternal = 5,
  /// The operation is recognized but not implemented.
  kNotImplemented = 6,
  /// A transient failure (I/O hiccup, injected fault): retrying the same
  /// operation may succeed. The engine's RetryPolicy retries exactly this
  /// code.
  kUnavailable = 7,
  /// Stored data is corrupt or unrecoverable (checksum mismatch,
  /// truncated payload, interrupted write). Retrying will not help;
  /// quarantine (engine allow_missing_chunks) or repair is required.
  kDataLoss = 8,
  /// A finite resource ran out (disk full, quota exceeded, short write
  /// because the device has no space). The on-disk state the operation
  /// was replacing is preserved; retrying only helps after the resource
  /// is freed.
  kResourceExhausted = 9,
};

/// \brief Returns a stable human-readable name for a status code.
std::string_view StatusCodeToString(StatusCode code);

/// \brief Success-or-error outcome of an operation.
///
/// A default-constructed Status is OK and carries no allocation; error
/// statuses allocate a small state block holding code and message.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  /// Constructs a status with the given code and message. `code` must not be
  /// kOk; use the default constructor for success.
  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// \brief True iff this status represents success.
  bool ok() const noexcept { return state_ == nullptr; }

  /// \brief The status code (kOk for a success status).
  StatusCode code() const noexcept {
    return state_ == nullptr ? StatusCode::kOk : state_->code;
  }

  /// \brief The error message ("" for a success status).
  const std::string& message() const noexcept;

  /// \brief "OK" or "<CODE>: <message>".
  std::string ToString() const;

  /// \brief Returns this status with `context` prepended to the message.
  /// OK statuses pass through unchanged.
  Status WithContext(std::string_view context) const;

  /// Factory helpers, one per error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code();
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // nullptr <=> OK. Keeping success allocation-free makes Status cheap to
  // return from hot paths (perturbation loops run millions of times).
  std::unique_ptr<State> state_;
};

}  // namespace hdldp

/// Propagates an error Status from the current function.
#define HDLDP_RETURN_NOT_OK(expr)                 \
  do {                                            \
    ::hdldp::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                    \
  } while (false)

#endif  // HDLDP_COMMON_STATUS_H_
