#include "common/status.h"

namespace hdldp {
namespace {
const std::string& EmptyString() {
  static const std::string kEmpty;
  return kEmpty;
}
}  // namespace

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    state_ = std::make_unique<State>(State{code, std::move(message)});
  }
}

Status::Status(const Status& other) {
  if (other.state_ != nullptr) {
    state_ = std::make_unique<State>(*other.state_);
  }
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    state_ = other.state_ == nullptr ? nullptr
                                     : std::make_unique<State>(*other.state_);
  }
  return *this;
}

const std::string& Status::message() const noexcept {
  return state_ == nullptr ? EmptyString() : state_->message;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string msg(context);
  msg += ": ";
  msg += message();
  return Status(code(), std::move(msg));
}

}  // namespace hdldp
