// Result<T>: value-or-Status, the hdldp counterpart of arrow::Result.
//
// Functions that can fail but also produce a value return Result<T>; callers
// either branch on ok() or use HDLDP_ASSIGN_OR_RETURN to propagate.

#ifndef HDLDP_COMMON_RESULT_H_
#define HDLDP_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace hdldp {

/// \brief Holds either a value of type T or an error Status.
///
/// Invariants: exactly one of the two is engaged; a Result never holds an OK
/// Status (constructing from an OK Status is a programming error and is
/// converted to an Internal error so misuse is observable rather than UB).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a value (implicit, mirroring arrow::Result).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from an error status (implicit so `return st;` works).
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  /// \brief True iff a value is held.
  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// \brief The error status; OK when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// \brief Access to the held value. Requires ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  /// \brief The value, or `fallback` when this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace hdldp

#define HDLDP_CONCAT_IMPL(a, b) a##b
#define HDLDP_CONCAT(a, b) HDLDP_CONCAT_IMPL(a, b)

/// Evaluates `rexpr` (a Result<T>); on error returns the Status from the
/// current function, otherwise assigns the value to `lhs`.
#define HDLDP_ASSIGN_OR_RETURN(lhs, rexpr)                             \
  HDLDP_ASSIGN_OR_RETURN_IMPL(HDLDP_CONCAT(_hdldp_result_, __LINE__), \
                              lhs, rexpr)

#define HDLDP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#endif  // HDLDP_COMMON_RESULT_H_
