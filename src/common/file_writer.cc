#include "common/file_writer.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/rng.h"

namespace hdldp {
namespace {

// One uniform draw in [0, 1) per operation, keyed by (seed, op) — the
// fate-hash pattern of data::FaultSchedule::Random, with its own tag so
// write fates never correlate with chunk fates at equal seeds.
double FateDraw(std::uint64_t seed, std::uint64_t op) {
  std::uint64_t mix = seed ^ 0xD15CULL ^ (0x9e3779b97f4a7c15ULL * (op + 1));
  return static_cast<double>(SplitMix64(&mix) >> 11) * 0x1.0p-53;
}

bool IsResourceErrno(int err) {
  return err == ENOSPC || err == EDQUOT || err == EFBIG;
}

Status WriteLoop(int fd, const char* p, std::size_t len,
                 std::optional<std::size_t> offset, const std::string& path) {
  while (len > 0) {
    const ssize_t n =
        offset.has_value()
            ? ::pwrite(fd, p, len, static_cast<off_t>(*offset))
            : ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string msg =
          "write failed for " + path + ": " + std::strerror(errno);
      return IsResourceErrno(errno) ? Status::ResourceExhausted(msg)
                                    : Status::Internal(msg);
    }
    p += n;
    if (offset.has_value()) *offset += static_cast<std::size_t>(n);
    len -= static_cast<std::size_t>(n);
  }
  return Status::OK();
}

}  // namespace

std::optional<WriteFaultKind> WriteFaultSchedule::WriteFate(
    std::uint64_t op) const {
  const auto it = explicit_.find(op);
  if (it != explicit_.end()) {
    if (it->second == WriteFaultKind::kShortWrite ||
        it->second == WriteFaultKind::kNoSpace) {
      return it->second;
    }
    return std::nullopt;
  }
  if (options_.short_write_rate <= 0.0 && options_.no_space_rate <= 0.0) {
    return std::nullopt;
  }
  const double u = FateDraw(seed_, op);
  if (u < options_.short_write_rate) return WriteFaultKind::kShortWrite;
  if (u < options_.short_write_rate + options_.no_space_rate) {
    return WriteFaultKind::kNoSpace;
  }
  return std::nullopt;
}

std::optional<WriteFaultKind> WriteFaultSchedule::FsyncFate(
    std::uint64_t op) const {
  const auto it = explicit_.find(op);
  if (it != explicit_.end()) {
    return it->second == WriteFaultKind::kFsyncFailure
               ? std::optional<WriteFaultKind>(it->second)
               : std::nullopt;
  }
  if (options_.fsync_failure_rate <= 0.0) return std::nullopt;
  return FateDraw(seed_, op) < options_.fsync_failure_rate
             ? std::optional<WriteFaultKind>(WriteFaultKind::kFsyncFailure)
             : std::nullopt;
}

Status FileWriter::WriteFully(int fd, const void* data, std::size_t len,
                              const std::string& path) {
  const std::uint64_t op = op_++;
  const char* p = static_cast<const char*>(data);
  if (const auto fate = schedule_.WriteFate(op)) {
    if (*fate == WriteFaultKind::kShortWrite && len > 1) {
      // Land half the bytes for real, then report the disk full: the
      // torn prefix is on disk exactly as a device would leave it.
      HDLDP_RETURN_NOT_OK(WriteLoop(fd, p, len / 2, std::nullopt, path));
    }
    return Status::ResourceExhausted(
        "injected ENOSPC at write op " + std::to_string(op) + " for " + path);
  }
  return WriteLoop(fd, p, len, std::nullopt, path);
}

Status FileWriter::PWriteFully(int fd, const void* data, std::size_t len,
                               std::size_t offset, const std::string& path) {
  const std::uint64_t op = op_++;
  const char* p = static_cast<const char*>(data);
  if (const auto fate = schedule_.WriteFate(op)) {
    if (*fate == WriteFaultKind::kShortWrite && len > 1) {
      HDLDP_RETURN_NOT_OK(WriteLoop(fd, p, len / 2, offset, path));
    }
    return Status::ResourceExhausted(
        "injected ENOSPC at write op " + std::to_string(op) + " for " + path);
  }
  return WriteLoop(fd, p, len, offset, path);
}

Status FileWriter::Fsync(int fd, const std::string& path) {
  const std::uint64_t op = op_++;
  if (schedule_.FsyncFate(op).has_value()) {
    return Status::DataLoss("injected fsync failure at op " +
                            std::to_string(op) + " for " + path);
  }
  if (::fsync(fd) != 0) {
    return Status::DataLoss("fsync failed for " + path + ": " +
                            std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace hdldp
