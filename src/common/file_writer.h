// Write-path syscall seam with deterministic fault injection.
//
// Every durable write the repo performs (shard part files, checkpoint
// records) funnels through a FileWriter, which forwards to the real
// write/pwrite/fsync syscalls — and, when a WriteFaultSchedule is
// installed, injects the disk failures a production collector must
// survive:
//
//   * kShortWrite   — half the requested bytes land on disk, then the
//     device reports no space. Models a write torn by a filling disk;
//     the bytes that landed are real, so callers must keep torn output
//     quarantined behind their .tmp/rename discipline.
//   * kNoSpace      — the write fails outright with no bytes written
//     (ENOSPC). ResourceExhausted.
//   * kFsyncFailure — the flush fails. After a failed fsync the page
//     cache state is unknowable (the kernel may have dropped the dirty
//     pages), so this is DataLoss, never retryable.
//
// Determinism: faults are keyed by the writer's operation counter —
// the n-th write/pwrite/fsync this writer performs — either explicitly
// (Add) or by a seeded SplitMix64 fate draw per operation
// (the data::FaultSchedule::Random pattern), so a fault pattern is
// named by a single seed and replays identically on every platform.
//
// Real-error mapping (no schedule needed): ENOSPC/EDQUOT/EFBIG from
// write() surface as ResourceExhausted, a failed fsync() as DataLoss,
// anything else as Internal.
//
// FileWriter is not internally synchronized; callers that share one
// across threads must serialize access (SnapshotFile's Save mutex).

#ifndef HDLDP_COMMON_FILE_WRITER_H_
#define HDLDP_COMMON_FILE_WRITER_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/status.h"

namespace hdldp {

/// Kind of one injected write-path fault.
enum class WriteFaultKind {
  kShortWrite,    ///< Half the bytes land, then ENOSPC (ResourceExhausted).
  kNoSpace,       ///< No bytes land, ENOSPC (ResourceExhausted).
  kFsyncFailure,  ///< The flush fails (DataLoss).
};

/// \brief A replayable map from write-operation index to injected
/// fault. Value type; copy it freely. Explicit faults (Add) take
/// precedence; otherwise, when any rate is nonzero, each operation
/// draws its fate from one SplitMix64 stream keyed by (seed, op).
class WriteFaultSchedule {
 public:
  struct RandomOptions {
    double short_write_rate = 0.0;
    double no_space_rate = 0.0;
    double fsync_failure_rate = 0.0;
  };

  WriteFaultSchedule() = default;
  WriteFaultSchedule(std::uint64_t seed, const RandomOptions& options)
      : seed_(seed), options_(options) {}

  /// Injects `kind` at operation `op`; a second Add for the same op
  /// replaces the first.
  void Add(std::uint64_t op, WriteFaultKind kind) { explicit_[op] = kind; }

  /// True iff any fault can ever fire.
  bool active() const {
    return !explicit_.empty() || options_.short_write_rate > 0.0 ||
           options_.no_space_rate > 0.0 || options_.fsync_failure_rate > 0.0;
  }

  /// Fate of write/pwrite operation `op` (kShortWrite/kNoSpace only).
  std::optional<WriteFaultKind> WriteFate(std::uint64_t op) const;
  /// Fate of fsync operation `op` (kFsyncFailure only).
  std::optional<WriteFaultKind> FsyncFate(std::uint64_t op) const;

 private:
  std::unordered_map<std::uint64_t, WriteFaultKind> explicit_;
  std::uint64_t seed_ = 0;
  RandomOptions options_;
};

/// \brief The write-path syscall wrapper. One per durable-file writer;
/// the operation counter ties each syscall to the schedule.
class FileWriter {
 public:
  FileWriter() = default;
  explicit FileWriter(WriteFaultSchedule schedule)
      : schedule_(std::move(schedule)) {}

  /// write() until `len` bytes land, retrying EINTR. ResourceExhausted
  /// on ENOSPC/EDQUOT/EFBIG (real or injected), Internal otherwise. An
  /// injected short write leaves len/2 real bytes in the file before
  /// failing.
  Status WriteFully(int fd, const void* data, std::size_t len,
                    const std::string& path);

  /// pwrite() at `offset` until `len` bytes land. Same error mapping.
  Status PWriteFully(int fd, const void* data, std::size_t len,
                     std::size_t offset, const std::string& path);

  /// fsync(). DataLoss on failure (real or injected): after a failed
  /// flush the on-disk state of previously written bytes is unknowable.
  Status Fsync(int fd, const std::string& path);

  /// Operations performed so far (successful or failed).
  std::uint64_t ops() const { return op_; }

  const WriteFaultSchedule& schedule() const { return schedule_; }

 private:
  WriteFaultSchedule schedule_;
  std::uint64_t op_ = 0;
};

}  // namespace hdldp

#endif  // HDLDP_COMMON_FILE_WRITER_H_
