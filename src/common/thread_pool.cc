#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace hdldp {

namespace {

// Shared state of one ParallelFor call. Helpers enqueued on the pool may
// start after the call has already completed (the calling thread can
// drain every index alone), so the state is shared_ptr-owned and helpers
// that find no work left simply return.
struct ForState {
  std::atomic<std::size_t> next;
  std::atomic<std::size_t> remaining;
  std::size_t end;
  const std::function<void(std::size_t)>* fn;
  std::mutex done_mutex;
  std::condition_variable done;

  // Claims indices until the range is exhausted; returns after
  // decrementing `remaining` for every index it ran.
  void Drain() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= end) return;
      (*fn)(i);
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(done_mutex);
        done.notify_all();
      }
    }
  }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_workers_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(
      std::max(1u, std::thread::hardware_concurrency()) - 1);
  return pool;
}

void ThreadPool::Post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.emplace_back(std::move(task));
  }
  wake_workers_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_workers_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& fn,
                             std::size_t max_concurrency) {
  if (begin >= end) return;
  const std::size_t count = end - begin;
  if (max_concurrency == 0) max_concurrency = threads_.size() + 1;
  const std::size_t helpers =
      std::min({count, threads_.size(), max_concurrency - 1});
  if (helpers == 0) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  auto state = std::make_shared<ForState>();
  state->next.store(begin, std::memory_order_relaxed);
  state->remaining.store(count, std::memory_order_relaxed);
  state->end = end;
  state->fn = &fn;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t h = 0; h < helpers; ++h) {
      queue_.emplace_back([state] { state->Drain(); });
    }
  }
  wake_workers_.notify_all();

  // The calling thread always participates, so the range drains even if
  // every pool worker is busy inside other (possibly outer) calls.
  state->Drain();
  std::unique_lock<std::mutex> lock(state->done_mutex);
  state->done.wait(lock, [&] {
    return state->remaining.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace hdldp
