#include "framework/berry_esseen.h"

#include <cmath>

namespace hdldp {
namespace framework {

Result<double> BerryEsseenBound(double third_abs_moment, double variance,
                                double reports) {
  if (!(variance > 0.0) || !std::isfinite(variance)) {
    return Status::InvalidArgument("BerryEsseenBound requires variance > 0");
  }
  if (!(third_abs_moment >= 0.0) || !std::isfinite(third_abs_moment)) {
    return Status::InvalidArgument(
        "BerryEsseenBound requires a finite rho >= 0");
  }
  if (!(reports > 0.0)) {
    return Status::InvalidArgument("BerryEsseenBound requires reports > 0");
  }
  const double s3 = variance * std::sqrt(variance);
  return kBerryEsseenConstant * (third_abs_moment + kBerryEsseenAdditive * s3) /
         (s3 * std::sqrt(reports));
}

Result<double> BerryEsseenBound(const DeviationModel& model) {
  return BerryEsseenBound(model.per_report_third_abs,
                          model.per_report_variance, model.expected_reports);
}

}  // namespace framework
}  // namespace hdldp
