#include "framework/experiment_runner.h"

#include "common/rng.h"

namespace hdldp {
namespace framework {

std::uint64_t ExperimentRunner::TrialSeed(std::size_t trial) const {
  // Same derivation shape as the pipeline's per-chunk streams: offset the
  // base seed by a golden-ratio multiple of the index, then mix through
  // SplitMix64 so nearby trials get uncorrelated streams.
  std::uint64_t mix =
      options_.seed +
      0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(trial) + 1);
  return SplitMix64(&mix);
}

}  // namespace framework
}  // namespace hdldp
