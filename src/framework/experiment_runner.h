// Trial-parallel experiment driver for the paper-reproduction benches.
//
// The figure and ablation benches repeat an independent experiment
// (one protocol run, one single-dimension simulation, ...) hundreds of
// times and average or histogram the results. Trials only interact
// through their seeds, so they parallelize perfectly; what must NOT
// change with the worker count is the output. The runner guarantees that:
//
//   * trial t's randomness comes from an independently derived seed
//     SplitMix64(seed, t) — never from a shared stream, so no trial's
//     draws depend on which thread ran it or in what order;
//   * results land in a vector indexed by trial and are reduced in trial
//     index order, so floating-point accumulation order is fixed.
//
// Hence RunTrials() output is bit-identical for 1 worker and N workers.

#ifndef HDLDP_FRAMEWORK_EXPERIMENT_RUNNER_H_
#define HDLDP_FRAMEWORK_EXPERIMENT_RUNNER_H_

#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/thread_pool.h"

namespace hdldp {
namespace framework {

/// Configuration of an ExperimentRunner.
struct ExperimentRunnerOptions {
  /// Base seed; trial t derives its own stream from (seed, t).
  std::uint64_t seed = 1;
  /// Maximum concurrent trials; 0 means one per hardware thread. The
  /// value never affects results, only wall-clock time.
  std::size_t max_workers = 0;
};

/// Per-trial context handed to the trial body.
struct TrialContext {
  /// Trial index in [0, num_trials).
  std::size_t trial = 0;
  /// The trial's independently derived seed: feed it to Rng or to a
  /// pipeline seed option. Identical across worker counts.
  std::uint64_t seed = 0;
};

/// \brief Runs independent trials on the shared thread pool, returning
/// results in trial order regardless of execution order or worker count.
class ExperimentRunner {
 public:
  explicit ExperimentRunner(const ExperimentRunnerOptions& options = {})
      : options_(options) {}

  /// The seed trial `trial` receives (SplitMix64-derived from the base).
  std::uint64_t TrialSeed(std::size_t trial) const;

  /// \brief Invokes fn(TrialContext) for each of `num_trials` trials,
  /// possibly concurrently, and returns the results indexed by trial.
  /// fn must not throw and must take all randomness from ctx.seed.
  template <typename Fn>
  auto RunTrials(std::size_t num_trials, Fn&& fn)
      -> std::vector<decltype(fn(TrialContext{}))> {
    // vector<bool> packs adjacent elements into one byte, which would
    // make the concurrent per-trial writes below a data race.
    static_assert(!std::is_same_v<decltype(fn(TrialContext{})), bool>,
                  "wrap bool trial results in a struct");
    std::vector<decltype(fn(TrialContext{}))> results(num_trials);
    ThreadPool::Shared().ParallelFor(
        0, num_trials,
        [&](std::size_t trial) {
          results[trial] = fn(TrialContext{trial, TrialSeed(trial)});
        },
        options_.max_workers);
    return results;
  }

  /// \brief RunTrials + reduction in trial index order:
  /// `reduce(trial_result)` is called for trial 0, 1, ..., in that order.
  template <typename Fn, typename Reduce>
  void ForEachTrial(std::size_t num_trials, Fn&& fn, Reduce&& reduce) {
    auto results = RunTrials(num_trials, std::forward<Fn>(fn));
    for (auto& result : results) reduce(result);
  }

 private:
  ExperimentRunnerOptions options_;
};

}  // namespace framework
}  // namespace hdldp

#endif  // HDLDP_FRAMEWORK_EXPERIMENT_RUNNER_H_
