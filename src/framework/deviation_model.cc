#include "framework/deviation_model.h"

#include <cmath>

#include "common/math.h"

namespace hdldp {
namespace framework {

double GaussianDeviation::Pdf(double x) const {
  return NormalPdf(x, mean, stddev);
}

double GaussianDeviation::Cdf(double x) const {
  return NormalCdf(x, mean, stddev);
}

double GaussianDeviation::ProbWithin(double xi) const {
  if (xi <= 0.0) return 0.0;
  return NormalIntervalProb(-xi, xi, mean, stddev);
}

double GaussianDeviation::SupDeviation(double confidence_z) const {
  return std::abs(mean) + confidence_z * stddev;
}

Result<mech::Interval> GaussianDeviation::CoverageInterval(
    double coverage) const {
  if (!(coverage > 0.0 && coverage < 1.0)) {
    return Status::InvalidArgument("CoverageInterval needs coverage in (0,1)");
  }
  const double z = NormalQuantile(0.5 * (1.0 + coverage));
  return mech::Interval{mean - z * stddev, mean + z * stddev};
}

Result<DeviationModel> ModelDeviation(const mech::Mechanism& mechanism,
                                      double eps_per_dim,
                                      const ValueDistribution& values,
                                      double expected_reports,
                                      const mech::Interval& data_domain) {
  HDLDP_ASSIGN_OR_RETURN(
      const DeviationModelBuilder builder,
      DeviationModelBuilder::Create(mechanism, eps_per_dim, values.values(),
                                    data_domain));
  return builder.Model(values.probabilities(), expected_reports);
}

Result<DeviationModelBuilder> DeviationModelBuilder::Create(
    const mech::Mechanism& mechanism, double eps_per_dim,
    std::span<const double> support, const mech::Interval& data_domain) {
  HDLDP_RETURN_NOT_OK(mechanism.ValidateBudget(eps_per_dim));
  HDLDP_ASSIGN_OR_RETURN(
      const mech::DomainMap map,
      mech::DomainMap::Between(data_domain, mechanism.InputDomain()));
  std::vector<mech::ConditionalMoments> atom_moments;
  atom_moments.reserve(support.size());
  for (const double value : support) {
    HDLDP_ASSIGN_OR_RETURN(
        const mech::ConditionalMoments m,
        mechanism.Moments(map.Forward(value), eps_per_dim));
    atom_moments.push_back(m);
  }
  return DeviationModelBuilder(std::move(atom_moments), map.scale());
}

Result<DeviationModel> DeviationModelBuilder::Model(
    std::span<const double> probabilities, double expected_reports) const {
  if (probabilities.size() != atom_moments_.size()) {
    return Status::InvalidArgument(
        "DeviationModelBuilder::Model probabilities do not match support");
  }
  if (!(expected_reports > 0.0)) {
    return Status::InvalidArgument("ModelDeviation requires reports > 0");
  }
  // Lemma 2 and Lemma 3 unify as the p_z-weighted averages of the
  // conditional moments: for unbounded mechanisms the conditional moments
  // are value-independent, so the weighting is a no-op.
  NeumaierSum bias_acc;
  NeumaierSum var_acc;
  NeumaierSum third_acc;
  for (std::size_t z = 0; z < atom_moments_.size(); ++z) {
    const double p = probabilities[z];
    if (p == 0.0) continue;
    const mech::ConditionalMoments& m = atom_moments_[z];
    bias_acc.Add(p * m.bias);
    var_acc.Add(p * m.variance);
    third_acc.Add(p * m.third_abs_central);
  }

  // Map native-domain moments back into the data domain:
  // data = (native - offset) / scale, so bias /= s, var /= s^2, rho /= s^3.
  const double s = scale_;
  DeviationModel model;
  model.per_report_variance = var_acc.Total() / (s * s);
  model.per_report_third_abs = third_acc.Total() / (s * s * s);
  model.expected_reports = expected_reports;
  model.deviation.mean = bias_acc.Total() / s;
  model.deviation.stddev =
      std::sqrt(model.per_report_variance / expected_reports);
  if (!(model.deviation.stddev > 0.0)) {
    return Status::Internal("ModelDeviation produced a degenerate deviation");
  }
  return model;
}

Result<double> PredictedMse(std::span<const GaussianDeviation> deviations) {
  if (deviations.empty()) {
    return Status::InvalidArgument("PredictedMse requires >= 1 dimension");
  }
  NeumaierSum acc;
  for (const GaussianDeviation& g : deviations) {
    acc.Add(Sq(g.mean) + Sq(g.stddev));
  }
  return acc.Total() / static_cast<double>(deviations.size());
}

Result<std::vector<double>> ExpectedNativeBias(
    const mech::Mechanism& mechanism, double eps_per_dim,
    std::span<const ValueDistribution> per_dim_values,
    const mech::Interval& data_domain) {
  if (per_dim_values.empty()) {
    return Status::InvalidArgument("ExpectedNativeBias requires >= 1 dim");
  }
  HDLDP_ASSIGN_OR_RETURN(
      const mech::DomainMap map,
      mech::DomainMap::Between(data_domain, mechanism.InputDomain()));
  std::vector<double> bias;
  bias.reserve(per_dim_values.size());
  for (const ValueDistribution& values : per_dim_values) {
    HDLDP_ASSIGN_OR_RETURN(
        const DeviationModel model,
        ModelDeviation(mechanism, eps_per_dim, values, /*expected_reports=*/1.0,
                       data_domain));
    // The model's deviation mean is the data-space bias; the aggregator
    // calibrates in native space, so scale back up.
    bias.push_back(model.deviation.mean * map.scale());
  }
  return bias;
}

MultivariateDeviation::MultivariateDeviation(
    std::vector<GaussianDeviation> dims)
    : dims_(std::move(dims)) {}

Result<MultivariateDeviation> MultivariateDeviation::Create(
    std::vector<GaussianDeviation> dimensions) {
  if (dimensions.empty()) {
    return Status::InvalidArgument("MultivariateDeviation requires >= 1 dim");
  }
  for (const GaussianDeviation& g : dimensions) {
    if (!(g.stddev > 0.0) || !std::isfinite(g.stddev) ||
        !std::isfinite(g.mean)) {
      return Status::InvalidArgument(
          "MultivariateDeviation requires finite means and stddev > 0");
    }
  }
  return MultivariateDeviation(std::move(dimensions));
}

Result<double> MultivariateDeviation::LogPdf(
    std::span<const double> deviation) const {
  if (deviation.size() != dims_.size()) {
    return Status::InvalidArgument("LogPdf: deviation has wrong dimensionality");
  }
  // log of Theorem 1's product: sum of per-dimension Gaussian log-pdfs.
  NeumaierSum acc;
  for (std::size_t j = 0; j < dims_.size(); ++j) {
    const double z = (deviation[j] - dims_[j].mean) / dims_[j].stddev;
    acc.Add(-0.5 * z * z - std::log(kSqrt2Pi * dims_[j].stddev));
  }
  return acc.Total();
}

Result<double> MultivariateDeviation::Pdf(
    std::span<const double> deviation) const {
  HDLDP_ASSIGN_OR_RETURN(const double log_pdf, LogPdf(deviation));
  return std::exp(log_pdf);
}

double MultivariateDeviation::ProbWithinBox(double xi) const {
  // Independence turns the box integral of Theorem 1's pdf into a product
  // of one-dimensional interval probabilities; accumulate in log space to
  // survive d in the thousands.
  NeumaierSum log_acc;
  for (const GaussianDeviation& g : dims_) {
    const double p = g.ProbWithin(xi);
    if (p <= 0.0) return 0.0;
    log_acc.Add(std::log(p));
  }
  return std::exp(log_acc.Total());
}

Result<double> MultivariateDeviation::ProbWithinBox(
    std::span<const double> xi) const {
  if (xi.size() != dims_.size()) {
    return Status::InvalidArgument(
        "ProbWithinBox: xi has wrong dimensionality");
  }
  NeumaierSum log_acc;
  for (std::size_t j = 0; j < dims_.size(); ++j) {
    const double p = dims_[j].ProbWithin(xi[j]);
    if (p <= 0.0) return 0.0;
    log_acc.Add(std::log(p));
  }
  return std::exp(log_acc.Total());
}

double MultivariateDeviation::ProbThresholdExceeded(double threshold) const {
  return 1.0 - ProbWithinBox(threshold);
}

}  // namespace framework
}  // namespace hdldp
