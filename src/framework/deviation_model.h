// The paper's analytical framework (Section IV-B).
//
// For a mechanism M, per-dimension budget eps/m and r expected reports,
// the deviation theta-hat_j - theta-bar_j is asymptotically Gaussian:
//
//   Lemma 2 (unbounded M):  N( E[N],            Var[N] / r )
//   Lemma 3 (bounded M):    N( sum_z p_z delta(v_z),
//                              sum_z p_z Var(v_z) / r )
//
// ModelDeviation builds that Gaussian (expressed in the *data* domain,
// accounting for any affine map into the mechanism's native domain), and
// MultivariateDeviation composes d independent dimensions into the
// Theorem 1 product density, answering box probabilities such as the
// Table II supremum probability P(|dev_j| <= xi_j for all j).

#ifndef HDLDP_FRAMEWORK_DEVIATION_MODEL_H_
#define HDLDP_FRAMEWORK_DEVIATION_MODEL_H_

#include <span>
#include <vector>

#include "common/result.h"
#include "framework/value_distribution.h"
#include "mech/mechanism.h"

namespace hdldp {
namespace framework {

/// \brief One dimension's Gaussian deviation law N(mean, stddev^2) for
/// theta-hat_j - theta-bar_j, in the data domain.
struct GaussianDeviation {
  /// delta_j: expected deviation (aggregation bias).
  double mean = 0.0;
  /// sigma_j: standard deviation of the deviation.
  double stddev = 0.0;

  /// Density of the deviation at x.
  double Pdf(double x) const;
  /// P(deviation <= x).
  double Cdf(double x) const;
  /// P(|deviation| <= xi).
  double ProbWithin(double xi) const;
  /// The framework's instantiation of sup|theta-hat - theta-bar|:
  /// |mean| + z * stddev at confidence z (z = 3 covers 99.7% of mass).
  double SupDeviation(double confidence_z) const;

  /// \brief Central interval [lo, hi] containing the deviation with the
  /// given probability (e.g. 0.95). Requires coverage in (0, 1).
  Result<mech::Interval> CoverageInterval(double coverage) const;
};

/// \brief Full per-dimension model: the Gaussian deviation plus the
/// per-report moments needed by the Theorem 2 error bound.
struct DeviationModel {
  GaussianDeviation deviation;
  /// E[Var(t* | t)] per report, data domain (the paper's (r_j sigma_j)^2).
  double per_report_variance = 0.0;
  /// E[rho(t)] per report, data domain (the paper's rho).
  double per_report_third_abs = 0.0;
  /// Expected reports r_j the model was built for.
  double expected_reports = 0.0;
};

/// \brief Builds the Lemma 2/Lemma 3 model for one dimension.
///
/// `values` is the distribution of original values in the *data domain*
/// `data_domain`; `expected_reports` is r = n m / d. The mechanism's
/// conditional moments are evaluated in its native domain and mapped
/// back. Every support atom must lie inside `data_domain` — including
/// atoms carrying zero probability, whose moments are evaluated (for the
/// DeviationModelBuilder reuse below) even though they contribute
/// nothing to the model.
Result<DeviationModel> ModelDeviation(const mech::Mechanism& mechanism,
                                      double eps_per_dim,
                                      const ValueDistribution& values,
                                      double expected_reports,
                                      const mech::Interval& data_domain = {
                                          -1.0, 1.0});

/// \brief Prepared form of ModelDeviation for many distributions over one
/// shared support.
///
/// The expensive part of a Lemma 3 model is the per-atom conditional
/// moments Moments(v_z, eps); they depend only on (mechanism, eps,
/// data_domain, v_z), not on the probabilities or the report count.
/// Create() evaluates them once; Model() then assembles a DeviationModel
/// from any probability weighting of the same support with a handful of
/// flops. ModelDeviation() itself delegates here, so Model() is
/// *bit-identical* to calling ModelDeviation() with a ValueDistribution
/// over (support, probabilities) — the freq pipeline leans on that to
/// build one model per expanded entry (all Bernoulli over {0, 1}) without
/// re-evaluating mechanism moments per entry.
class DeviationModelBuilder {
 public:
  /// Evaluates the conditional moments of every support atom (data
  /// domain). Validates the budget and the domain map once. The support
  /// is only read here — the builder keeps the derived moments, not the
  /// values.
  static Result<DeviationModelBuilder> Create(
      const mech::Mechanism& mechanism, double eps_per_dim,
      std::span<const double> support,
      const mech::Interval& data_domain = {-1.0, 1.0});

  /// \brief The Lemma 2/3 model for the distribution putting
  /// probabilities[z] on support atom z. `probabilities` must match the
  /// support's length (entries may be 0; they contribute nothing, exactly
  /// as in ModelDeviation).
  Result<DeviationModel> Model(std::span<const double> probabilities,
                               double expected_reports) const;

  std::size_t support_size() const { return atom_moments_.size(); }

 private:
  DeviationModelBuilder(std::vector<mech::ConditionalMoments> atom_moments,
                        double scale)
      : atom_moments_(std::move(atom_moments)), scale_(scale) {}

  // Conditional moments of each support atom, in the mechanism's native
  // domain (mapped back by Model()).
  std::vector<mech::ConditionalMoments> atom_moments_;
  // DomainMap scale of data_domain -> native domain.
  double scale_;
};

/// \brief The framework's MSE prediction for naive aggregation:
/// (1/d) sum_j (delta_j^2 + sigma_j^2), the expectation of paper Eq. 3
/// under the Lemma 2/3 model. Errors on an empty span.
Result<double> PredictedMse(std::span<const GaussianDeviation> deviations);

/// \brief The Section IV-B "Calibration" step, made concrete: the
/// expected aggregation bias E[delta_ij] of each dimension in the
/// mechanism's *native output space*, computed from the per-dimension
/// value distributions. Feed the result to
/// protocol::MeanAggregator::SetBiasCorrection to debias mechanisms with
/// value-dependent bias (Square wave being the paper's example).
Result<std::vector<double>> ExpectedNativeBias(
    const mech::Mechanism& mechanism, double eps_per_dim,
    std::span<const ValueDistribution> per_dim_values,
    const mech::Interval& data_domain = {-1.0, 1.0});

/// \brief Theorem 1: the product of d independent per-dimension Gaussians.
class MultivariateDeviation {
 public:
  /// Requires every dimension to have stddev > 0.
  static Result<MultivariateDeviation> Create(
      std::vector<GaussianDeviation> dimensions);

  std::size_t num_dims() const { return dims_.size(); }
  const std::vector<GaussianDeviation>& dimensions() const { return dims_; }

  /// log f(dev) of Theorem 1's product density.
  Result<double> LogPdf(std::span<const double> deviation) const;

  /// f(dev); underflows to 0 gracefully in high d.
  Result<double> Pdf(std::span<const double> deviation) const;

  /// P(|dev_j| <= xi for all j), the Table II quantity with a shared
  /// supremum.
  double ProbWithinBox(double xi) const;

  /// P(|dev_j| <= xi_j for all j) with per-dimension suprema.
  Result<double> ProbWithinBox(std::span<const double> xi) const;

  /// 1 - P(all |dev_j| <= threshold): the paper's lower bound on the
  /// probability that HDR4ME's Lemma 4 (threshold = 1) or Lemma 5
  /// (threshold = 2) precondition holds (Theorems 3-4).
  double ProbThresholdExceeded(double threshold) const;

 private:
  explicit MultivariateDeviation(std::vector<GaussianDeviation> dims);
  std::vector<GaussianDeviation> dims_;
};

}  // namespace framework
}  // namespace hdldp

#endif  // HDLDP_FRAMEWORK_DEVIATION_MODEL_H_
