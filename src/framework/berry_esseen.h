// Theorem 2: how far the CLT approximation of Lemmas 2-3 can be from the
// true law of theta-hat_j - theta-bar_j at a finite report count r.
//
// The bound is Korolev & Shevtsova's Berry-Esseen refinement (the paper's
// reference [42]):
//
//   sup_x |F_r(x) - Phi(x)| <= 0.33554 (rho + 0.415 s^3) / (s^3 sqrt(r)),
//
// where s^2 = E[Var(t* | t)] is the per-report variance and
// rho = E|t* - t - delta|^3 the per-report absolute third moment. This is
// the form the paper's own worked example evaluates (1.57% for Laplace at
// r = 1000); the exponent arrangement printed in the theorem statement is
// a typesetting slip, see EXPERIMENTS.md (E9).

#ifndef HDLDP_FRAMEWORK_BERRY_ESSEEN_H_
#define HDLDP_FRAMEWORK_BERRY_ESSEEN_H_

#include "common/result.h"
#include "framework/deviation_model.h"

namespace hdldp {
namespace framework {

/// Korolev-Shevtsova constant used by the paper.
inline constexpr double kBerryEsseenConstant = 0.33554;
/// Additive constant in the Korolev-Shevtsova bound.
inline constexpr double kBerryEsseenAdditive = 0.415;

/// \brief The Theorem 2 bound from raw per-report moments.
///
/// `third_abs_moment` = rho, `variance` = s^2 (both per report, any
/// consistent domain: the bound is scale-invariant), `reports` = r > 0.
Result<double> BerryEsseenBound(double third_abs_moment, double variance,
                                double reports);

/// \brief Convenience overload reading the moments from a DeviationModel.
Result<double> BerryEsseenBound(const DeviationModel& model);

}  // namespace framework
}  // namespace hdldp

#endif  // HDLDP_FRAMEWORK_BERRY_ESSEEN_H_
