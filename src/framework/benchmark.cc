#include "framework/benchmark.h"

namespace hdldp {
namespace framework {

Result<std::vector<MechanismBenchmark>> BenchmarkMechanisms(
    std::span<const BenchmarkSpec> specs, double eps_per_dim, double reports,
    std::span<const double> xis) {
  if (specs.empty()) {
    return Status::InvalidArgument("BenchmarkMechanisms requires >= 1 spec");
  }
  if (xis.empty()) {
    return Status::InvalidArgument("BenchmarkMechanisms requires >= 1 xi");
  }
  std::vector<MechanismBenchmark> out;
  out.reserve(specs.size());
  for (const BenchmarkSpec& spec : specs) {
    if (spec.mechanism == nullptr) {
      return Status::InvalidArgument("BenchmarkMechanisms: null mechanism");
    }
    MechanismBenchmark entry;
    entry.name = std::string(spec.mechanism->Name());
    HDLDP_ASSIGN_OR_RETURN(
        entry.model,
        ModelDeviation(*spec.mechanism, eps_per_dim, spec.values, reports,
                       spec.data_domain));
    entry.probabilities.reserve(xis.size());
    for (const double xi : xis) {
      entry.probabilities.push_back(entry.model.deviation.ProbWithin(xi));
    }
    out.push_back(std::move(entry));
  }
  return out;
}

std::vector<std::size_t> WinnersPerSupremum(
    const std::vector<MechanismBenchmark>& benchmarks) {
  std::vector<std::size_t> winners;
  if (benchmarks.empty()) return winners;
  const std::size_t num_xis = benchmarks.front().probabilities.size();
  winners.assign(num_xis, 0);
  for (std::size_t k = 0; k < num_xis; ++k) {
    for (std::size_t i = 1; i < benchmarks.size(); ++i) {
      if (benchmarks[i].probabilities[k] >
          benchmarks[winners[k]].probabilities[k]) {
        winners[k] = i;
      }
    }
  }
  return winners;
}

}  // namespace framework
}  // namespace hdldp
