// The "benchmark without experiments" of Section IV: compare LDP
// mechanisms by the probability that their one-dimensional deviation
// stays within a tolerated supremum xi (Table II's quantity),
//
//   P(|theta-hat_j - theta-bar_j| <= xi)
//     = integral_{-xi}^{xi} f(dev) d(dev)
//
// under the Lemma 2/3 Gaussian model. Higher probability = better
// mechanism at that tolerance; different xi can crown different winners
// (the paper's Piecewise-vs-Square-wave case study).

#ifndef HDLDP_FRAMEWORK_BENCHMARK_H_
#define HDLDP_FRAMEWORK_BENCHMARK_H_

#include <span>
#include <string>
#include <vector>

#include "framework/deviation_model.h"
#include "mech/mechanism.h"

namespace hdldp {
namespace framework {

/// One mechanism's benchmark entry.
struct MechanismBenchmark {
  /// Mechanism name.
  std::string name;
  /// The per-dimension deviation model used.
  DeviationModel model;
  /// P(|dev| <= xi_k) for each requested supremum.
  std::vector<double> probabilities;
};

/// Inputs of a one-dimensional benchmark for one mechanism.
struct BenchmarkSpec {
  mech::MechanismPtr mechanism;
  /// Distribution of original values in `data_domain`.
  ValueDistribution values = ValueDistribution::Point(0.0);
  /// Domain those values live in; mapped onto the mechanism's native
  /// input domain. The paper's case study feeds each mechanism its native
  /// domain directly (identity map).
  mech::Interval data_domain{-1.0, 1.0};
};

/// \brief Benchmarks mechanisms at per-dimension budget `eps_per_dim` with
/// `reports` expected reports, over the suprema `xis` (Table II engine).
Result<std::vector<MechanismBenchmark>> BenchmarkMechanisms(
    std::span<const BenchmarkSpec> specs, double eps_per_dim, double reports,
    std::span<const double> xis);

/// \brief Index (into the benchmark list) of the winning mechanism for
/// each supremum; ties break toward the earlier entry.
std::vector<std::size_t> WinnersPerSupremum(
    const std::vector<MechanismBenchmark>& benchmarks);

}  // namespace framework
}  // namespace hdldp

#endif  // HDLDP_FRAMEWORK_BENCHMARK_H_
