#include "framework/value_distribution.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/math.h"

namespace hdldp {
namespace framework {

ValueDistribution::ValueDistribution(std::vector<double> values,
                                     std::vector<double> probabilities)
    : values_(std::move(values)), probabilities_(std::move(probabilities)) {}

Result<ValueDistribution> ValueDistribution::Create(
    std::vector<double> values, std::vector<double> probabilities) {
  if (values.empty() || values.size() != probabilities.size()) {
    return Status::InvalidArgument(
        "ValueDistribution requires matching non-empty values/probabilities");
  }
  NeumaierSum total;
  for (const double p : probabilities) {
    if (p < 0.0 || !std::isfinite(p)) {
      return Status::InvalidArgument("ValueDistribution: bad probability");
    }
    total.Add(p);
  }
  if (std::abs(total.Total() - 1.0) > 1e-9) {
    return Status::InvalidArgument(
        "ValueDistribution: probabilities must sum to 1");
  }
  for (const double v : values) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument("ValueDistribution: non-finite value");
    }
  }
  return ValueDistribution(std::move(values), std::move(probabilities));
}

ValueDistribution ValueDistribution::Point(double value) {
  return ValueDistribution({value}, {1.0});
}

Result<ValueDistribution> ValueDistribution::FromSamples(
    std::span<const double> samples, std::size_t max_support) {
  if (samples.empty()) {
    return Status::InvalidArgument("FromSamples requires a non-empty sample");
  }
  if (max_support == 0) {
    return Status::InvalidArgument("FromSamples requires max_support > 0");
  }
  // Exact empirical law when the support is small.
  std::map<double, std::size_t> counts;
  bool small = true;
  for (const double x : samples) {
    if (++counts[x] == 1 && counts.size() > max_support) {
      small = false;
      break;
    }
  }
  const auto n = static_cast<double>(samples.size());
  if (small) {
    std::vector<double> values;
    std::vector<double> probs;
    values.reserve(counts.size());
    probs.reserve(counts.size());
    for (const auto& [value, count] : counts) {
      values.push_back(value);
      probs.push_back(static_cast<double>(count) / n);
    }
    // Remove float fuzz in the probability total.
    double total = 0.0;
    for (const double p : probs) total += p;
    for (double& p : probs) p /= total;
    return Create(std::move(values), std::move(probs));
  }
  // Quantile-bin discretization: equal-count bins, bin mean as
  // representative.
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> values;
  std::vector<double> probs;
  values.reserve(max_support);
  probs.reserve(max_support);
  const std::size_t total_n = sorted.size();
  std::size_t start = 0;
  for (std::size_t b = 0; b < max_support; ++b) {
    const std::size_t end = (b + 1) * total_n / max_support;
    if (end <= start) continue;
    NeumaierSum sum;
    for (std::size_t i = start; i < end; ++i) sum.Add(sorted[i]);
    values.push_back(sum.Total() / static_cast<double>(end - start));
    probs.push_back(static_cast<double>(end - start) / n);
    start = end;
  }
  return Create(std::move(values), std::move(probs));
}

double ValueDistribution::Mean() const {
  NeumaierSum acc;
  for (std::size_t z = 0; z < values_.size(); ++z) {
    acc.Add(values_[z] * probabilities_[z]);
  }
  return acc.Total();
}

double ValueDistribution::Variance() const {
  const double mean = Mean();
  NeumaierSum acc;
  for (std::size_t z = 0; z < values_.size(); ++z) {
    acc.Add(probabilities_[z] * Sq(values_[z] - mean));
  }
  return acc.Total();
}

}  // namespace framework
}  // namespace hdldp
