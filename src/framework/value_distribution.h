// Discrete distribution of original values in one dimension.
//
// Lemma 3 models bounded mechanisms by splitting the reports into groups
// of equal original value {v_z} with probabilities {p_z}; this class is
// that (value, probability) list. Continuous data is discretized "with
// sampling" (paper Section IV-B): FromSamples keeps the exact empirical
// support when it is small and otherwise collapses the sample into
// equal-probability quantile bins represented by their conditional means.

#ifndef HDLDP_FRAMEWORK_VALUE_DISTRIBUTION_H_
#define HDLDP_FRAMEWORK_VALUE_DISTRIBUTION_H_

#include <span>
#include <vector>

#include "common/result.h"

namespace hdldp {
namespace framework {

/// \brief Finite-support distribution of one dimension's original values.
class ValueDistribution {
 public:
  /// Creates from explicit support and probabilities (must be the same
  /// non-zero length; probabilities non-negative, summing to 1 +/- 1e-9).
  static Result<ValueDistribution> Create(std::vector<double> values,
                                          std::vector<double> probabilities);

  /// Distribution concentrated at a single value.
  static ValueDistribution Point(double value);

  /// \brief Empirical distribution of a sample.
  ///
  /// If the sample has at most `max_support` distinct values the exact
  /// empirical law is returned; otherwise the sorted sample is split into
  /// `max_support` equal-count bins and each bin is represented by its
  /// mean with mass (bin count / n).
  static Result<ValueDistribution> FromSamples(std::span<const double> samples,
                                               std::size_t max_support = 64);

  const std::vector<double>& values() const { return values_; }
  const std::vector<double>& probabilities() const { return probabilities_; }
  std::size_t support_size() const { return values_.size(); }

  /// E[V].
  double Mean() const;
  /// Var[V] (population).
  double Variance() const;

 private:
  ValueDistribution(std::vector<double> values,
                    std::vector<double> probabilities);

  std::vector<double> values_;
  std::vector<double> probabilities_;
};

}  // namespace framework
}  // namespace hdldp

#endif  // HDLDP_FRAMEWORK_VALUE_DISTRIBUTION_H_
