#include "service/report_stream.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "mech/registry.h"
#include "protocol/budget.h"

namespace hdldp {
namespace service {

namespace {

// Per-report generator seed: the SplitMix64 fate-hash pattern of
// FaultSchedule::Random under a stream-specific tag, so report i's Rng
// stream is independent of every other report's and of the fault fates
// (which hash under their own tags).
std::uint64_t ReportSeed(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t mix = seed ^ (0x5EEDULL + 0x9e3779b97f4a7c15ULL * (index + 1));
  return SplitMix64(&mix);
}

}  // namespace

ReportStream::ReportStream(ReportStreamOptions options)
    : options_(std::move(options)) {}

Result<ReportStream> ReportStream::Create(const ReportStreamOptions& options) {
  if (options.num_dims == 0) {
    return Status::InvalidArgument("report stream requires num_dims > 0");
  }
  if (options.num_tenants == 0) {
    return Status::InvalidArgument("report stream requires num_tenants > 0");
  }
  HDLDP_ASSIGN_OR_RETURN(mech::MechanismPtr mechanism,
                         mech::MakeMechanism(options.mechanism));
  ReportStream stream(options);
  stream.mechanism_ = mechanism;
  const std::size_t m = options.report_dims == 0 ? options.num_dims
                                                 : options.report_dims;
  if (m > options.num_dims) {
    return Status::InvalidArgument(
        "report_dims exceeds the stream dimensionality");
  }
  const bool compact =
      options.encoding == protocol::ReportEncoding::kOue ||
      options.encoding == protocol::ReportEncoding::kOlh ||
      options.encoding == protocol::ReportEncoding::kHadamard1;
  if (compact) {
    // Compact payloads decode straight into the data domain, so the
    // service runs with an identity map and the codec's value range.
    if (options.workload == StreamWorkload::kMean) {
      if (options.encoding != protocol::ReportEncoding::kHadamard1) {
        return Status::InvalidArgument(
            "mean streams support dense|sampled|hadamard1 encodings");
      }
      HDLDP_ASSIGN_OR_RETURN(
          const protocol::Hadamard1Params hadamard,
          protocol::Hadamard1Params::Create(options.num_dims, m,
                                            options.epsilon));
      stream.hadamard_.emplace(hadamard);
      stream.service_dims_ = options.num_dims;
      stream.expected_entries_ = m;
      stream.output_hi_ = hadamard.bound * hadamard.c_inv;
      stream.output_lo_ = -stream.output_hi_;
    } else {
      if (options.encoding == protocol::ReportEncoding::kHadamard1) {
        return Status::InvalidArgument(
            "freq streams support dense|sampled|oue|olh encodings");
      }
      if (options.num_categories < 2) {
        return Status::InvalidArgument(
            "freq stream requires num_categories >= 2");
      }
      const double per_dim = options.epsilon / static_cast<double>(m);
      if (options.encoding == protocol::ReportEncoding::kOue) {
        HDLDP_ASSIGN_OR_RETURN(stream.oue_,
                               freq::OueParams::FromEpsilon(per_dim));
        stream.output_lo_ = stream.oue_.EntryValue(false);
        stream.output_hi_ = stream.oue_.EntryValue(true);
      } else {
        HDLDP_ASSIGN_OR_RETURN(stream.olh_,
                               freq::OlhParams::FromEpsilon(per_dim));
        stream.output_lo_ = stream.olh_.EntryValue(false);
        stream.output_hi_ = stream.olh_.EntryValue(true);
      }
      stream.per_entry_epsilon_ = per_dim;
      stream.service_dims_ = options.num_dims * options.num_categories;
      stream.expected_entries_ = m * options.num_categories;
    }
    const std::uint64_t fault_seed =
        options.fault_seed != 0 ? options.fault_seed : options.seed;
    stream.fault_schedule_ =
        data::ReportFaultSchedule(fault_seed, options.faults);
    return stream;
  }
  if (options.workload == StreamWorkload::kMean) {
    protocol::ClientOptions client_options;
    client_options.total_epsilon = options.epsilon;
    client_options.report_dims = options.report_dims;
    HDLDP_ASSIGN_OR_RETURN(
        protocol::Client client,
        protocol::Client::Create(mechanism, options.num_dims,
                                 client_options));
    stream.domain_map_ = client.domain_map();
    stream.service_dims_ = options.num_dims;
    stream.expected_entries_ = m;
    stream.per_entry_epsilon_ = client.PerDimensionEpsilon();
    stream.client_.emplace(std::move(client));
  } else {
    if (options.num_categories < 2) {
      return Status::InvalidArgument(
          "freq stream requires num_categories >= 2");
    }
    HDLDP_ASSIGN_OR_RETURN(
        stream.per_entry_epsilon_,
        protocol::BudgetAccountant::PerEntryBudget(options.epsilon, m));
    HDLDP_RETURN_NOT_OK(mechanism->ValidateBudget(stream.per_entry_epsilon_));
    // One-hot entries live in {0, 1}; map that onto the mechanism's
    // native input domain, exactly like the freq pipeline does.
    HDLDP_ASSIGN_OR_RETURN(
        stream.domain_map_,
        mech::DomainMap::Between(mech::Interval{0.0, 1.0},
                                 mechanism->InputDomain()));
    stream.service_dims_ = options.num_dims * options.num_categories;
    stream.expected_entries_ = m * options.num_categories;
  }
  HDLDP_ASSIGN_OR_RETURN(const mech::Interval output,
                         mechanism->OutputDomain(stream.per_entry_epsilon_));
  stream.output_lo_ = output.lo;
  stream.output_hi_ = output.hi;
  const std::uint64_t fault_seed =
      options.fault_seed != 0 ? options.fault_seed : options.seed;
  stream.fault_schedule_ =
      data::ReportFaultSchedule(fault_seed, options.faults);
  return stream;
}

PayloadCodecOptions ReportStream::CodecOptions() const {
  PayloadCodecOptions codec;
  codec.encoding = options_.encoding;
  codec.epsilon = options_.epsilon;
  codec.report_dims = options_.report_dims == 0 ? options_.num_dims
                                                : options_.report_dims;
  codec.num_questions = options_.num_dims;
  codec.num_categories = options_.num_categories;
  codec.num_dims = options_.num_dims;
  return codec;
}

// Compact-payload report bytes. Draw layout per report stream (frozen,
// like the numeric layouts — recorded faulted runs replay these draws):
//
//   kHadamard1: d tuple uniforms, one raw Next() whose high 32 bits are
//   the sample seed (dimensions then come from Hadamard1SampleDims, no
//   stream draws), then the Hadamard1Encode pair (row index, sign coin).
//
//   kOue/kOlh:  one Floyd SampleWithoutReplacement(q, m) walk, then per
//   sampled question IN DRAW ORDER one UniformInt(c) answer followed by
//   that question's OueEncodeDim / OlhEncodeDim draws; the payload dims
//   are sorted ascending only after all draws (wire framing order never
//   feeds back into the stream).
Status ReportStream::GenerateCompact(std::uint64_t index,
                                     std::vector<std::uint8_t>* out) {
  Rng rng(ReportSeed(options_.seed, index));
  std::vector<std::uint8_t> payload;
  if (options_.encoding == protocol::ReportEncoding::kHadamard1) {
    tuple_.resize(options_.num_dims);
    for (double& v : tuple_) v = rng.Uniform(-1.0, 1.0);
    const std::uint32_t sample_seed =
        static_cast<std::uint32_t>(rng.Next() >> 32);
    protocol::Hadamard1SampleDims(sample_seed, hadamard_->num_dims,
                                  hadamard_->report_dims, &sampled_);
    gathered_.clear();
    for (const std::uint32_t dim : sampled_) gathered_.push_back(tuple_[dim]);
    const protocol::Hadamard1Report encoded =
        protocol::Hadamard1Encode(*hadamard_, gathered_, &rng);
    protocol::Hadamard1Payload wire;
    wire.num_dims = static_cast<std::uint32_t>(options_.num_dims);
    wire.report_dims = static_cast<std::uint32_t>(hadamard_->report_dims);
    wire.sample_seed = sample_seed;
    wire.index = encoded.index;
    wire.positive = encoded.positive;
    HDLDP_ASSIGN_OR_RETURN(payload, protocol::EncodeHadamard1Payload(wire));
  } else {
    const std::size_t m = options_.report_dims == 0 ? options_.num_dims
                                                    : options_.report_dims;
    const std::size_t c = options_.num_categories;
    sampled_.clear();
    rng.SampleWithoutReplacement(options_.num_dims, m, &sampled_);
    if (options_.encoding == protocol::ReportEncoding::kOue) {
      protocol::OuePayload wire;
      wire.num_dims = options_.num_dims;
      wire.dims.reserve(m);
      for (const std::uint32_t question : sampled_) {
        const auto answer = static_cast<std::uint32_t>(rng.UniformInt(c));
        protocol::OuePayloadDim dim;
        dim.dimension = question;
        dim.cardinality = static_cast<std::uint32_t>(c);
        freq::OueEncodeDim(oue_, answer, c, &rng, &dim.bits);
        wire.dims.push_back(std::move(dim));
      }
      std::sort(wire.dims.begin(), wire.dims.end(),
                [](const protocol::OuePayloadDim& a,
                   const protocol::OuePayloadDim& b) {
                  return a.dimension < b.dimension;
                });
      HDLDP_ASSIGN_OR_RETURN(payload, protocol::EncodeOuePayload(wire));
    } else {
      protocol::OlhPayload wire;
      wire.num_dims = options_.num_dims;
      wire.dims.reserve(m);
      for (const std::uint32_t question : sampled_) {
        const auto answer = static_cast<std::uint32_t>(rng.UniformInt(c));
        const freq::OlhDimReport encoded =
            freq::OlhEncodeDim(olh_, answer, &rng);
        wire.dims.push_back(protocol::OlhPayloadDim{
            question, static_cast<std::uint32_t>(olh_.g), encoded.hash_seed,
            encoded.value});
      }
      std::sort(wire.dims.begin(), wire.dims.end(),
                [](const protocol::OlhPayloadDim& a,
                   const protocol::OlhPayloadDim& b) {
                  return a.dimension < b.dimension;
                });
      HDLDP_ASSIGN_OR_RETURN(payload, protocol::EncodeOlhPayload(wire));
    }
  }
  protocol::ReportEnvelope envelope;
  envelope.tenant = index % options_.num_tenants;
  envelope.sequence = index / options_.num_tenants;
  envelope.tick = options_.reports_per_tick == 0
                      ? 0
                      : index / options_.reports_per_tick;
  envelope.payload = std::move(payload);
  *out = protocol::EncodeEnvelope(envelope);
  return Status::OK();
}

Status ReportStream::Generate(std::uint64_t index,
                              std::vector<std::uint8_t>* out) {
  if (options_.encoding == protocol::ReportEncoding::kOue ||
      options_.encoding == protocol::ReportEncoding::kOlh ||
      options_.encoding == protocol::ReportEncoding::kHadamard1) {
    return GenerateCompact(index, out);
  }
  Rng rng(ReportSeed(options_.seed, index));
  protocol::UserReport report;
  if (options_.workload == StreamWorkload::kMean) {
    tuple_.resize(options_.num_dims);
    for (double& v : tuple_) v = rng.Uniform(-1.0, 1.0);
    HDLDP_ASSIGN_OR_RETURN(report, client_->Report(tuple_, &rng));
  } else {
    const std::size_t m = options_.report_dims == 0 ? options_.num_dims
                                                    : options_.report_dims;
    const std::size_t c = options_.num_categories;
    sampled_.clear();
    rng.SampleWithoutReplacement(options_.num_dims, m, &sampled_);
    report.entries.reserve(m * c);
    for (const std::uint32_t question : sampled_) {
      const std::size_t answer =
          static_cast<std::size_t>(rng.UniformInt(c));
      for (std::size_t k = 0; k < c; ++k) {
        const double native =
            domain_map_.Forward(k == answer ? 1.0 : 0.0);
        report.entries.push_back(protocol::DimensionReport{
            static_cast<std::uint32_t>(question * c + k),
            mechanism_->Perturb(native, per_entry_epsilon_, &rng)});
      }
    }
  }
  HDLDP_ASSIGN_OR_RETURN(const std::vector<std::uint8_t> payload,
                         protocol::EncodeReport(report));
  protocol::ReportEnvelope envelope;
  envelope.tenant = index % options_.num_tenants;
  envelope.sequence = index / options_.num_tenants;
  envelope.tick = options_.reports_per_tick == 0
                      ? 0
                      : index / options_.reports_per_tick;
  envelope.payload = payload;
  *out = protocol::EncodeEnvelope(envelope);
  return Status::OK();
}

Status ReportStream::Next(std::vector<std::uint8_t>* envelope, bool* done) {
  *done = false;
  for (;;) {
    // An envelope held back for release slot r arrives once generation
    // has passed r: every report still ungenerated has release >=
    // next_index_, so the heap top is final the moment its release falls
    // below the generation cursor (or the source runs dry).
    if (!pending_.empty() &&
        (next_index_ >= options_.num_reports ||
         pending_.top().release < next_index_)) {
      *envelope = pending_.top().bytes;
      pending_.pop();
      ++emitted_;
      return Status::OK();
    }
    if (next_index_ >= options_.num_reports) {
      *done = true;
      return Status::OK();
    }
    const std::uint64_t index = next_index_++;
    const data::ReportFate fate = fault_schedule_.Fate(index);
    if (fate.drop) {
      ++dropped_;
      continue;
    }
    PendingEnvelope item;
    item.index = index;
    item.release = index + fate.reorder_delay;
    if (fate.reorder_delay > 0) ++reordered_;
    HDLDP_RETURN_NOT_OK(Generate(index, &item.bytes));
    for (int copy = 1; copy <= fate.duplicates; ++copy) {
      PendingEnvelope dup;
      dup.index = index;
      dup.copy = copy;
      // A retransmit: identical bytes, arriving one slot later.
      dup.release = item.release + 1;
      dup.bytes = item.bytes;
      pending_.push(std::move(dup));
      ++duplicated_;
    }
    pending_.push(std::move(item));
  }
}

Status ReportStream::SkipTo(std::uint64_t position) {
  if (position < emitted_) {
    return Status::InvalidArgument(
        "ReportStream::SkipTo cannot rewind; create a fresh stream");
  }
  std::vector<std::uint8_t> scratch;
  while (emitted_ < position) {
    bool done = false;
    HDLDP_RETURN_NOT_OK(Next(&scratch, &done));
    if (done) {
      return Status::InvalidArgument(
          "SkipTo position lies beyond the end of the stream");
    }
  }
  return Status::OK();
}

}  // namespace service
}  // namespace hdldp
