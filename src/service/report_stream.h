// Deterministic report-stream generator + fault delivery model: the
// traffic source driving the aggregation service's tests, benches and
// CLI verbs.
//
// A stream is a pure function of its options: report i's tuple, sampled
// dimensions and perturbation draws all come from an Rng seeded by one
// SplitMix64 fate-hash of (seed, i), so the i-th report is bit-identical
// no matter how much of the stream was generated before it — the
// property that lets a crash-restored run SkipTo() its cursor and replay
// the exact suffix the dead process would have seen.
//
// Delivery faults (drop / duplicate / reorder) come from
// data::ReportFaultSchedule, keyed the same way, and are applied inside
// the stream: Next() emits envelopes in the faulted arrival order via a
// bounded release-slot heap. Duplicates re-emit the same envelope bytes
// (a retransmit, which the service must dedup), reordered reports arrive
// after later-sent ones (which the window lateness grace must absorb),
// and drops never arrive at all (counted here, so tests can reconcile
// generator against service totals).

#ifndef HDLDP_SERVICE_REPORT_STREAM_H_
#define HDLDP_SERVICE_REPORT_STREAM_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/fault_injection.h"
#include "mech/mechanism.h"
#include "protocol/client.h"
#include "protocol/hadamard.h"
#include "protocol/wire.h"
#include "service/payload_codec.h"

namespace hdldp {
namespace service {

/// Which protocol the generated reports speak.
enum class StreamWorkload {
  /// Mean estimation: m of d sampled dimensions at eps/m each, tuples
  /// uniform in [-1, 1].
  kMean,
  /// Frequency estimation: m of q sampled questions, each one-hot
  /// encoded over c categories and perturbed entry-wise at eps/(2m).
  kFreq,
};

/// \brief Configuration of one deterministic report stream.
struct ReportStreamOptions {
  StreamWorkload workload = StreamWorkload::kMean;
  /// Wire encoding of the generated reports. kDense/kSampled emit the
  /// numeric version-1 payloads (m decides which); kHadamard1 (kMean
  /// only) and kOue/kOlh (kFreq only) emit the compact payload kinds,
  /// which the service decodes through a matching PayloadCodec.
  protocol::ReportEncoding encoding = protocol::ReportEncoding::kDense;
  /// Registered mechanism name (mech::MakeMechanism). Unused by the
  /// compact encodings (their randomized response needs no value
  /// mechanism).
  std::string mechanism = "duchi";
  /// Logical reports in the stream (before drops/duplicates).
  std::uint64_t num_reports = 0;
  /// d for kMean; the question count q for kFreq.
  std::size_t num_dims = 1;
  /// Categories per question (kFreq only).
  std::size_t num_categories = 2;
  /// Total per-report privacy budget eps.
  double epsilon = 1.0;
  /// Sampled dimensions/questions m per report; 0 = all.
  std::size_t report_dims = 0;
  std::uint64_t seed = 1;
  /// Reports round-robin over this many tenants; report i is
  /// (tenant i % T, sequence i / T).
  std::uint64_t num_tenants = 1;
  /// Event-time: tick = i / reports_per_tick (0 = everything at tick 0).
  std::uint64_t reports_per_tick = 0;
  /// Delivery-fault rates; fates are keyed by (fault_seed, i).
  data::ReportFaultSchedule::Options faults;
  std::uint64_t fault_seed = 0;
};

/// \brief Pull-based deterministic envelope stream. Not thread-safe; one
/// driver thread pulls and fans out into AggregationService::Submit.
class ReportStream {
 public:
  static Result<ReportStream> Create(const ReportStreamOptions& options);

  /// \brief Produces the next arriving envelope. Sets *done = true (and
  /// leaves *envelope untouched) once the stream is exhausted.
  Status Next(std::vector<std::uint8_t>* envelope, bool* done);

  /// Envelopes emitted so far — the resume cursor the service snapshots.
  std::uint64_t position() const { return emitted_; }

  /// \brief Fast-forwards a fresh stream to `position` emitted
  /// envelopes, discarding everything before it (crash-resume replay).
  Status SkipTo(std::uint64_t position);

  /// Logical reports the fault model dropped so far.
  std::uint64_t dropped() const { return dropped_; }
  /// Extra retransmit copies emitted so far.
  std::uint64_t duplicated() const { return duplicated_; }
  /// Reports emitted out of their send order so far.
  std::uint64_t reordered() const { return reordered_; }

  /// Aggregated dimensionality the service must be created with: d for
  /// kMean, q * c for kFreq.
  std::size_t service_dims() const { return service_dims_; }
  /// Native-space map matching the generated reports.
  const mech::DomainMap& domain_map() const { return domain_map_; }
  /// Entries per report (m for kMean, m * c for kFreq).
  std::size_t expected_entries() const { return expected_entries_; }
  /// Admissible native-space value range (mechanism output domain at the
  /// per-entry budget; infinite for unbounded mechanisms).
  double output_lo() const { return output_lo_; }
  double output_hi() const { return output_hi_; }
  /// Budget one report spends against its tenant: the total eps.
  double per_report_epsilon() const { return options_.epsilon; }
  /// Codec configuration a service ingesting this stream needs
  /// (meaningful for the compact encodings only).
  PayloadCodecOptions CodecOptions() const;

 private:
  struct PendingEnvelope {
    std::uint64_t release = 0;
    std::uint64_t index = 0;
    int copy = 0;
    std::vector<std::uint8_t> bytes;
  };
  struct LaterRelease {
    bool operator()(const PendingEnvelope& a,
                    const PendingEnvelope& b) const {
      if (a.release != b.release) return a.release > b.release;
      if (a.index != b.index) return a.index > b.index;
      return a.copy > b.copy;
    }
  };

  explicit ReportStream(ReportStreamOptions options);

  /// Envelope bytes of logical report `index` — pure in (options, index).
  Status Generate(std::uint64_t index, std::vector<std::uint8_t>* out);
  /// The compact-encoding arm of Generate (draw layout documented at the
  /// definition; frozen).
  Status GenerateCompact(std::uint64_t index, std::vector<std::uint8_t>* out);

  ReportStreamOptions options_;
  mech::MechanismPtr mechanism_;
  std::optional<protocol::Client> client_;  // kMean only
  // Compact-encoding parameters (one of them, matching options_.encoding).
  std::optional<protocol::Hadamard1Params> hadamard_;
  freq::OueParams oue_;
  freq::OlhParams olh_;
  mech::DomainMap domain_map_;
  data::ReportFaultSchedule fault_schedule_;
  std::size_t service_dims_ = 0;
  std::size_t expected_entries_ = 0;
  double per_entry_epsilon_ = 0.0;  // kFreq perturbation budget
  double output_lo_ = 0.0;
  double output_hi_ = 0.0;

  std::uint64_t next_index_ = 0;  // next logical report to generate
  std::uint64_t emitted_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t reordered_ = 0;
  std::priority_queue<PendingEnvelope, std::vector<PendingEnvelope>,
                      LaterRelease>
      pending_;

  // Reused per-report scratch.
  std::vector<double> tuple_;
  std::vector<std::uint32_t> sampled_;
  std::vector<double> gathered_;  // kHadamard1 sampled values
};

}  // namespace service
}  // namespace hdldp

#endif  // HDLDP_SERVICE_REPORT_STREAM_H_
