// Compact membership set over per-tenant sequence numbers — the dedup
// index behind the aggregation service's idempotent ingestion.
//
// A tenant's sequences arrive mostly contiguously (devices number their
// reports 0, 1, 2, ...), with duplicates from retransmits and holes from
// drops, so the seen-set is a handful of half-open intervals rather than
// millions of hash entries. Intervals also serialize into snapshots as
// (lo, hi) pairs, keeping crash-safe dedup state proportional to the
// stream's disorder, not its length.

#ifndef HDLDP_SERVICE_SEQ_INTERVAL_SET_H_
#define HDLDP_SERVICE_SEQ_INTERVAL_SET_H_

#include <cstdint>
#include <map>

namespace hdldp {
namespace service {

/// \brief Ordered set of uint64 values stored as coalesced half-open
/// intervals. Not thread-safe; the service guards each instance with its
/// owning group's mutex.
class SeqIntervalSet {
 public:
  /// \brief Inserts `value`; returns false (and changes nothing) if it
  /// was already present. Adjacent intervals coalesce, so n contiguous
  /// inserts end as one interval.
  bool Insert(std::uint64_t value) {
    // Candidate predecessor: the last interval starting at or before
    // `value`.
    auto next = intervals_.upper_bound(value);
    if (next != intervals_.begin()) {
      auto prev = std::prev(next);
      if (value < prev->second) return false;  // already covered
      if (value == prev->second) {
        // Extends the predecessor; maybe bridges into the successor.
        if (next != intervals_.end() && next->first == value + 1) {
          prev->second = next->second;
          intervals_.erase(next);
        } else {
          prev->second = value + 1;
        }
        ++count_;
        return true;
      }
    }
    if (next != intervals_.end() && next->first == value + 1) {
      // Prepends to the successor (map keys are immutable: reinsert).
      const std::uint64_t hi = next->second;
      intervals_.erase(next);
      intervals_.emplace(value, hi);
    } else {
      intervals_.emplace(value, value + 1);
    }
    ++count_;
    return true;
  }

  bool Contains(std::uint64_t value) const {
    auto next = intervals_.upper_bound(value);
    if (next == intervals_.begin()) return false;
    return value < std::prev(next)->second;
  }

  /// Number of values (not intervals) in the set.
  std::uint64_t size() const { return count_; }

  /// Intervals as lo -> hi (half-open), ascending — the snapshot wire
  /// form.
  const std::map<std::uint64_t, std::uint64_t>& intervals() const {
    return intervals_;
  }

  /// \brief Restore path: appends one interval [lo, hi) that must lie
  /// strictly after everything already inserted (snapshots store
  /// intervals ascending and disjoint).
  void RestoreInterval(std::uint64_t lo, std::uint64_t hi) {
    intervals_.emplace(lo, hi);
    count_ += hi - lo;
  }

 private:
  std::map<std::uint64_t, std::uint64_t> intervals_;
  std::uint64_t count_ = 0;
};

}  // namespace service
}  // namespace hdldp

#endif  // HDLDP_SERVICE_SEQ_INTERVAL_SET_H_
