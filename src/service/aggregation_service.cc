#include "service/aggregation_service.h"

#include <algorithm>
#include <cstring>
#include <thread>
#include <utility>

#include "common/rng.h"
#include "engine/reduce.h"
#include "protocol/aggregator.h"

namespace hdldp {
namespace service {

namespace {

// Version 3 added the quarantine state (per-tenant invalid_streak +
// quarantined flag, the shed_quarantined / quarantined_tenants /
// failed_snapshots counters); version 2 added accepted_payload_bytes.
// Older blobs are rejected — checkpoints are same-version artifacts,
// not archival data.
constexpr std::uint32_t kSnapshotBlobVersion = 3;

// Little-endian fixed-width snapshot blob codec. The blob rides inside
// one SnapshotFile record, which supplies the CRC frame and torn-tail
// tolerance; this layer only has to be unambiguous.
struct BlobWriter {
  std::vector<unsigned char> bytes;

  void U32(std::uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(std::uint64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Span(std::span<const unsigned char> s) {
    U64(s.size());
    bytes.insert(bytes.end(), s.begin(), s.end());
  }

 private:
  void Raw(const void* data, std::size_t len) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    bytes.insert(bytes.end(), p, p + len);
  }
};

struct BlobReader {
  std::span<const unsigned char> bytes;
  std::size_t pos = 0;

  Status U32(std::uint32_t* v) { return Raw(v, sizeof(*v)); }
  Status U64(std::uint64_t* v) { return Raw(v, sizeof(*v)); }
  Status F64(double* v) { return Raw(v, sizeof(*v)); }
  Status Span(std::vector<unsigned char>* out) {
    std::uint64_t len = 0;
    HDLDP_RETURN_NOT_OK(U64(&len));
    if (len > bytes.size() - pos) {
      return Status::DataLoss("service snapshot: truncated byte span");
    }
    out->assign(bytes.begin() + static_cast<std::ptrdiff_t>(pos),
                bytes.begin() + static_cast<std::ptrdiff_t>(pos + len));
    pos += len;
    return Status::OK();
  }

 private:
  Status Raw(void* out, std::size_t len) {
    if (len > bytes.size() - pos) {
      return Status::DataLoss("service snapshot: truncated field");
    }
    std::memcpy(out, bytes.data() + pos, len);
    pos += len;
    return Status::OK();
  }
};

// Pane-seal accumulator: a MeanAggregator reduced with the state-exact
// merge plus the report count the published window reconciles against.
struct PaneAccumulator {
  protocol::MeanAggregator agg;
  std::uint64_t reports = 0;

  void Reset() {
    agg.Reset();
    reports = 0;
  }
  Status Merge(const PaneAccumulator& other) {
    reports += other.reports;
    return agg.MergeState(other.agg);
  }
};

std::vector<unsigned char> BuildDigest(const ServiceOptions& options) {
  protocol::RunDigest digest;
  digest.AddString("hdldp-service-v1");
  digest.AddU64(options.num_dims);
  digest.AddU64(options.window.width);
  digest.AddU64(options.window.slide);
  digest.AddU64(options.window.lateness);
  digest.AddF64(options.tenant_epsilon);
  digest.AddF64(options.per_report_epsilon);
  digest.AddU64(options.expected_entries);
  digest.AddF64(options.output_lo);
  digest.AddF64(options.output_hi);
  digest.AddF64(options.domain_map.scale());
  digest.AddF64(options.domain_map.Forward(0.0));
  digest.AddU64(options.native_bias.size());
  for (const double b : options.native_bias) digest.AddF64(b);
  // The payload encoding and codec geometry: a checkpoint taken while
  // ingesting OUE payloads must never resume a run decoding OLH ones.
  digest.AddU64(static_cast<std::uint64_t>(options.codec.encoding));
  digest.AddF64(options.codec.epsilon);
  digest.AddU64(options.codec.report_dims);
  digest.AddU64(options.codec.num_questions);
  digest.AddU64(options.codec.num_categories);
  digest.AddU64(options.codec.num_dims);
  // Quarantine changes the accepted set, so two runs that disagree on
  // the trip wire must never share a checkpoint.
  digest.AddU64(options.max_invalid_per_tenant);
  digest.AddString(options.digest_tag);
  // Worker count, queue capacity and overload policy are deliberately
  // absent: estimates are invariant to them, so a run checkpointed at 4
  // workers restores bit-identically at 1 (and vice versa).
  return digest.bytes;
}

}  // namespace

AggregationService::AggregationService(ServiceOptions options)
    : options_(std::move(options)) {}

std::size_t AggregationService::GroupOf(std::uint64_t tenant) {
  // One SplitMix64 fate draw keyed by the tenant (the fate-hash pattern
  // of data::FaultSchedule::Random): a pure function of the tenant, so a
  // tenant's dedup/budget/buffer state always lives in one group no
  // matter how many workers the process runs.
  std::uint64_t mix = 0x5EA1ULL ^ (0x9e3779b97f4a7c15ULL * (tenant + 1));
  return static_cast<std::size_t>(SplitMix64(&mix) % kNumShardGroups);
}

Result<std::unique_ptr<AggregationService>> AggregationService::Create(
    ServiceOptions options) {
  if (options.num_dims == 0) {
    return Status::InvalidArgument("service requires num_dims > 0");
  }
  HDLDP_RETURN_NOT_OK(options.window.Validate());
  if (!options.native_bias.empty() &&
      options.native_bias.size() != options.num_dims) {
    return Status::InvalidArgument(
        "native_bias must be empty or have num_dims entries");
  }
  std::uint64_t budget_capacity = 0;
  if (options.tenant_epsilon > 0.0) {
    if (!(options.per_report_epsilon > 0.0)) {
      return Status::InvalidArgument(
          "a per-tenant budget requires per_report_epsilon > 0");
    }
    HDLDP_ASSIGN_OR_RETURN(
        const protocol::BudgetAccountant probe,
        protocol::BudgetAccountant::Create(options.tenant_epsilon));
    HDLDP_ASSIGN_OR_RETURN(budget_capacity,
                           probe.Capacity(options.per_report_epsilon));
  }
  if (options.num_workers == 0) {
    options.num_workers =
        std::max(1u, std::thread::hardware_concurrency());
  }
  if (options.queue_capacity == 0) {
    return Status::InvalidArgument("queue_capacity must be > 0");
  }

  std::unique_ptr<AggregationService> svc(
      new AggregationService(std::move(options)));
  svc->workers_ = svc->options_.num_workers;
  svc->budget_capacity_ = budget_capacity;
  if (svc->options_.codec.encoding != protocol::ReportEncoding::kDense &&
      svc->options_.codec.encoding != protocol::ReportEncoding::kSampled) {
    HDLDP_ASSIGN_OR_RETURN(PayloadCodec codec,
                           PayloadCodec::Create(svc->options_.codec));
    if (codec.service_dims() != svc->options_.num_dims) {
      return Status::InvalidArgument(
          "codec geometry disagrees with num_dims (expected " +
          std::to_string(codec.service_dims()) + " aggregated dims)");
    }
    svc->codec_.emplace(std::move(codec));
  }
  svc->groups_.reserve(kNumShardGroups);
  for (std::size_t g = 0; g < kNumShardGroups; ++g) {
    svc->groups_.push_back(std::make_unique<GroupState>());
  }

  if (!svc->options_.checkpoint_path.empty()) {
    const std::vector<unsigned char> digest = BuildDigest(svc->options_);
    auto opened =
        protocol::SnapshotFile::Open(svc->options_.checkpoint_path, digest,
                                     svc->options_.snapshot_write_faults);
    if (opened.ok()) {
      protocol::SnapshotFile snapshot = std::move(opened).value();
      if (snapshot.resumed()) {
        const auto state = snapshot.Load(0);
        if (!state.has_value()) {
          return Status::DataLoss(
              "service checkpoint resumed but holds no state record");
        }
        HDLDP_RETURN_NOT_OK(svc->RestoreSnapshot(state->acc_state));
        svc->snapshot_seq_ = state->chunks_done;
        svc->resumed_ = true;
      }
      svc->snapshot_.emplace(std::move(snapshot));
    } else if (opened.status().code() == StatusCode::kResourceExhausted ||
               opened.status().code() == StatusCode::kDataLoss) {
      // Graceful degradation: an unwritable (full disk, failing fsync)
      // or unreadably corrupt checkpoint must not stop serving. Run
      // snapshot-free; the stats ledger reports the service degraded
      // and every SaveSnapshot attempt counts as failed. A digest
      // mismatch (another run's checkpoint) stays a loud typed error.
      svc->stats_.failed_snapshots.fetch_add(1, std::memory_order_relaxed);
    } else {
      return opened.status();
    }
  }

  svc->queues_.reserve(svc->workers_);
  for (std::size_t w = 0; w < svc->workers_; ++w) {
    svc->queues_.push_back(
        std::make_unique<BoundedQueue<protocol::ReportEnvelope>>(
            svc->options_.queue_capacity));
  }
  svc->pool_ = std::make_unique<ThreadPool>(svc->workers_);
  AggregationService* raw = svc.get();
  for (std::size_t w = 0; w < svc->workers_; ++w) {
    svc->pool_->Post([raw, w] { raw->WorkerLoop(w); });
  }
  return svc;
}

AggregationService::~AggregationService() {
  if (!stopped_.exchange(true)) {
    for (auto& queue : queues_) queue->Close();
    pool_.reset();
  }
  // A destructor without Finish() models a crash: the checkpoint file
  // stays on disk for the next Create() to restore.
  if (snapshot_.has_value()) {
    const Status ignored = snapshot_->Close();
    (void)ignored;
  }
}

Status AggregationService::Submit(std::span<const std::uint8_t> bytes) {
  if (stopped_.load(std::memory_order_acquire)) {
    return Status::Unavailable("aggregation service is stopped");
  }
  stats_.submitted.fetch_add(1, std::memory_order_relaxed);
  auto envelope = protocol::DecodeEnvelope(bytes);
  if (!envelope.ok()) {
    stats_.rejected_malformed.fetch_add(1, std::memory_order_relaxed);
    return envelope.status();
  }
  const std::size_t worker = GroupOf(envelope.value().tenant) % workers_;
  pending_.fetch_add(1, std::memory_order_acq_rel);
  bool queued = false;
  if (options_.overload == OverloadPolicy::kShed) {
    queued = queues_[worker]->TryPush(std::move(envelope).value());
    if (!queued) {
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      stats_.shed_queue_full.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable("ingestion queue full: report shed");
    }
  } else {
    queued = queues_[worker]->Push(std::move(envelope).value());
    if (!queued) {
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      return Status::Unavailable("aggregation service is stopped");
    }
  }
  return Status::OK();
}

void AggregationService::WorkerLoop(std::size_t worker) {
  while (auto item = queues_[worker]->Pop()) {
    Process(std::move(*item));
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(quiesce_mu_);
      quiesce_cv_.notify_all();
    }
  }
}

void AggregationService::Process(protocol::ReportEnvelope envelope) {
  const std::size_t g = GroupOf(envelope.tenant);
  const std::uint64_t pane = options_.window.PaneOf(envelope.tick);
  GroupState& group = *groups_[g];
  std::lock_guard<std::mutex> lock(group.mu);
  // The late check and the buffer insert share the group lock: the seal
  // path raises sealed_before_ *before* taking any group lock to
  // extract buffers, so a report is either buffered before its pane is
  // extracted or it observes the raised bound and is shed — never lost.
  if (pane < sealed_before_.load(std::memory_order_acquire)) {
    stats_.shed_late.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TenantState& tenant = group.tenants[envelope.tenant];
  if (tenant.quarantined) {
    // O(1) containment: no decode, no dedup growth — a Byzantine tenant
    // flooding garbage costs one counter bump per report.
    stats_.shed_quarantined.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Counts one rejection toward the tenant's consecutive-invalid streak
  // and trips the quarantine at the configured threshold. A tenant's
  // reports drain from one fixed queue in submission order, so the
  // streak — and the trip point — is worker-count invariant.
  const auto reject = [&](std::atomic<std::uint64_t>& bucket) {
    bucket.fetch_add(1, std::memory_order_relaxed);
    if (options_.max_invalid_per_tenant == 0) return;
    if (++tenant.invalid_streak >= options_.max_invalid_per_tenant) {
      tenant.quarantined = true;
      stats_.quarantined_tenants.fetch_add(1, std::memory_order_relaxed);
    }
  };
  if (!tenant.seen.Insert(envelope.sequence)) {
    stats_.deduped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  auto report = codec_.has_value() ? codec_->Decode(envelope.payload)
                                   : protocol::DecodeReport(envelope.payload);
  if (!report.ok()) {
    reject(stats_.rejected_malformed);
    return;
  }
  const std::size_t expected = options_.expected_entries > 0
                                   ? options_.expected_entries
                                   : report.value().entries.size();
  if (!protocol::ValidateReport(report.value(), options_.num_dims, expected,
                                options_.output_lo, options_.output_hi)
           .ok()) {
    reject(stats_.rejected_invalid);
    return;
  }
  if (budget_capacity_ > 0) {
    // Sequence-keyed admission (see BudgetAccountant::Capacity): which
    // reports are over budget is a pure function of the stream, so the
    // accepted set never depends on arrival order. The ledger Spend is
    // the enforcement backstop — admission guarantees it fits.
    if (envelope.sequence >= budget_capacity_) {
      reject(stats_.rejected_budget);
      return;
    }
    if (!tenant.ledger.has_value()) {
      auto ledger = protocol::BudgetAccountant::Create(
          options_.tenant_epsilon);
      tenant.ledger.emplace(std::move(ledger).value());
    }
    if (!tenant.ledger->Spend(options_.per_report_epsilon).ok()) {
      reject(stats_.rejected_budget);
      return;
    }
    ++tenant.accepted;
  }
  tenant.invalid_streak = 0;
  const std::size_t payload_bytes = envelope.payload.size();
  group.panes[pane].push_back(BufferedReport{
      envelope.tenant, envelope.sequence, std::move(report).value()});
  stats_.accepted.fetch_add(1, std::memory_order_relaxed);
  stats_.accepted_payload_bytes.fetch_add(payload_bytes,
                                          std::memory_order_relaxed);
  any_accepted_.store(true, std::memory_order_release);
  std::uint64_t seen = max_pane_seen_.load(std::memory_order_relaxed);
  while (pane > seen && !max_pane_seen_.compare_exchange_weak(
                            seen, pane, std::memory_order_acq_rel)) {
  }
}

void AggregationService::Quiesce() {
  std::unique_lock<std::mutex> lock(quiesce_mu_);
  quiesce_cv_.wait(lock, [&] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

Status AggregationService::AdvanceWatermark(std::uint64_t watermark) {
  Quiesce();
  watermark_ = std::max(watermark_, watermark);
  return SealAndPublish(options_.window.SealablePanes(watermark_));
}

Status AggregationService::Drain() {
  Quiesce();
  std::uint64_t limit = sealed_before_.load(std::memory_order_acquire);
  if (any_accepted_.load(std::memory_order_acquire)) {
    limit = std::max(
        limit, max_pane_seen_.load(std::memory_order_acquire) + 1);
  }
  return SealAndPublish(limit);
}

Status AggregationService::SealAndPublish(std::uint64_t pane_limit) {
  const std::uint64_t sealed = sealed_before_.load(std::memory_order_acquire);
  if (pane_limit > sealed) {
    // Raise the bound before touching any group so a report processed
    // concurrently is either already buffered (extracted below) or shed
    // as late — see Process().
    sealed_before_.store(pane_limit, std::memory_order_release);
    for (std::uint64_t p = sealed; p < pane_limit; ++p) {
      auto make_acc = [this]() -> Result<PaneAccumulator> {
        HDLDP_ASSIGN_OR_RETURN(
            protocol::MeanAggregator agg,
            protocol::MeanAggregator::Create(options_.num_dims,
                                             options_.domain_map));
        return PaneAccumulator{std::move(agg), 0};
      };
      auto body = [this, p](std::size_t g,
                            PaneAccumulator* scratch) -> Status {
        std::vector<BufferedReport> buffer;
        {
          std::lock_guard<std::mutex> lock(groups_[g]->mu);
          auto it = groups_[g]->panes.find(p);
          if (it != groups_[g]->panes.end()) {
            buffer = std::move(it->second);
            groups_[g]->panes.erase(it);
          }
        }
        // Processing order across workers is scheduling noise; the fold
        // order inside a group is pinned here instead.
        std::sort(buffer.begin(), buffer.end(),
                  [](const BufferedReport& a, const BufferedReport& b) {
                    return a.tenant != b.tenant ? a.tenant < b.tenant
                                                : a.sequence < b.sequence;
                  });
        for (const BufferedReport& r : buffer) {
          HDLDP_RETURN_NOT_OK(scratch->agg.ConsumeReport(r.report));
          ++scratch->reports;
        }
        return Status::OK();
      };
      // 64 groups <= kMaxReductionGroups, so the tree degenerates to a
      // flat in-group-order MergeState chain — one deterministic merge
      // sequence at every concurrency.
      HDLDP_ASSIGN_OR_RETURN(
          PaneAccumulator pane_acc,
          engine::ReduceChunks<PaneAccumulator>(kNumShardGroups, 0, make_acc,
                                                body));
      if (pane_acc.reports > 0) {
        PaneAggregate aggregate;
        aggregate.report_count = pane_acc.reports;
        pane_acc.agg.SerializeState(&aggregate.state);
        std::lock_guard<std::mutex> lock(publish_mu_);
        pane_aggregates_.emplace(p, std::move(aggregate));
      }
      // Empty panes are not materialized: PublishWindow treats a
      // missing pane as the (exact-identity) zero state.
    }
  }
  const std::uint64_t k = options_.window.panes_per_window();
  if (!any_accepted_.load(std::memory_order_acquire)) return Status::OK();
  const std::uint64_t limit = sealed_before_.load(std::memory_order_acquire);
  const std::uint64_t last_pane =
      max_pane_seen_.load(std::memory_order_acquire);
  while (next_window_ + k <= limit && next_window_ <= last_pane) {
    HDLDP_RETURN_NOT_OK(PublishWindow(next_window_));
    ++next_window_;
    std::lock_guard<std::mutex> lock(publish_mu_);
    pane_aggregates_.erase(pane_aggregates_.begin(),
                           pane_aggregates_.lower_bound(next_window_));
  }
  return Status::OK();
}

Status AggregationService::PublishWindow(std::uint64_t window) {
  HDLDP_ASSIGN_OR_RETURN(
      protocol::MeanAggregator acc,
      protocol::MeanAggregator::Create(options_.num_dims,
                                       options_.domain_map));
  if (!options_.native_bias.empty()) {
    HDLDP_RETURN_NOT_OK(acc.SetBiasCorrection(options_.native_bias));
  }
  PublishedWindow published;
  published.index = window;
  std::uint64_t report_count = 0;
  {
    std::lock_guard<std::mutex> lock(publish_mu_);
    for (std::uint64_t p = window;
         p < window + options_.window.panes_per_window(); ++p) {
      const auto it = pane_aggregates_.find(p);
      if (it == pane_aggregates_.end()) continue;  // empty pane
      HDLDP_ASSIGN_OR_RETURN(
          protocol::MeanAggregator pane,
          protocol::MeanAggregator::Create(options_.num_dims,
                                           options_.domain_map));
      HDLDP_RETURN_NOT_OK(pane.RestoreState(it->second.state));
      HDLDP_RETURN_NOT_OK(acc.MergeState(pane));
      published.report_count += it->second.report_count;
    }
    report_count = published.report_count;
    published.estimate = acc.EstimatedMean();
    published_.push_back(std::move(published));
  }
  stats_.published_windows.fetch_add(1, std::memory_order_relaxed);
  stats_.published_reports.fetch_add(report_count,
                                     std::memory_order_relaxed);
  return Status::OK();
}

Status AggregationService::SaveSnapshot(std::uint64_t resume_cursor) {
  if (!snapshot_.has_value()) {
    if (options_.checkpoint_path.empty()) {
      return Status::FailedPrecondition(
          "SaveSnapshot requires a checkpoint_path");
    }
    // Degraded mode: the checkpoint file could not be opened at Create.
    // Keep serving and keep counting the snapshots that never happened.
    stats_.failed_snapshots.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
  Quiesce();
  const std::vector<unsigned char> blob = SerializeSnapshot(resume_cursor);
  const Status saved = snapshot_->Save(0, ++snapshot_seq_, {}, blob);
  if (!saved.ok() && (saved.code() == StatusCode::kResourceExhausted ||
                      saved.code() == StatusCode::kDataLoss)) {
    // Graceful degradation: the failed append was rolled back, so the
    // previous snapshot is still intact and restorable. Record the
    // failure loudly in the stats ledger and keep serving — estimates
    // never depend on the snapshot path.
    stats_.failed_snapshots.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
  return saved;
}

Status AggregationService::Finish() {
  if (!stopped_.exchange(true)) {
    for (auto& queue : queues_) queue->Close();
    pool_.reset();
  }
  if (snapshot_.has_value()) {
    const Status closed = snapshot_->Close();
    snapshot_.reset();
    if (!closed.ok()) {
      if (closed.code() != StatusCode::kResourceExhausted &&
          closed.code() != StatusCode::kDataLoss) {
        return closed;
      }
      // A failed final flush is the same graceful-degradation story as
      // a failed Save: the estimates this run published never depended
      // on the snapshot, so count it and finish clean.
      stats_.failed_snapshots.fetch_add(1, std::memory_order_relaxed);
    }
    HDLDP_RETURN_NOT_OK(
        protocol::SnapshotFile::Remove(options_.checkpoint_path));
  }
  return Status::OK();
}

ServiceStats AggregationService::Stats() const {
  ServiceStats s;
  s.submitted = stats_.submitted.load(std::memory_order_acquire);
  s.accepted = stats_.accepted.load(std::memory_order_acquire);
  s.accepted_payload_bytes =
      stats_.accepted_payload_bytes.load(std::memory_order_acquire);
  s.deduped = stats_.deduped.load(std::memory_order_acquire);
  s.shed_queue_full =
      stats_.shed_queue_full.load(std::memory_order_acquire);
  s.shed_late = stats_.shed_late.load(std::memory_order_acquire);
  s.shed_quarantined =
      stats_.shed_quarantined.load(std::memory_order_acquire);
  s.rejected_malformed =
      stats_.rejected_malformed.load(std::memory_order_acquire);
  s.rejected_invalid =
      stats_.rejected_invalid.load(std::memory_order_acquire);
  s.rejected_budget =
      stats_.rejected_budget.load(std::memory_order_acquire);
  s.quarantined_tenants =
      stats_.quarantined_tenants.load(std::memory_order_acquire);
  s.failed_snapshots =
      stats_.failed_snapshots.load(std::memory_order_acquire);
  s.degraded = s.failed_snapshots > 0;
  s.published_windows =
      stats_.published_windows.load(std::memory_order_acquire);
  s.published_reports =
      stats_.published_reports.load(std::memory_order_acquire);
  return s;
}

Status AggregationService::VerifyReconciliation() const {
  const ServiceStats s = Stats();
  const std::uint64_t accounted = s.accepted + s.deduped +
                                  s.shed_queue_full + s.shed_late +
                                  s.shed_quarantined + s.rejected_malformed +
                                  s.rejected_invalid + s.rejected_budget;
  if (accounted != s.submitted) {
    return Status::Internal(
        "shedding ledger mismatch: submitted " +
        std::to_string(s.submitted) + " but accounted " +
        std::to_string(accounted) +
        " (a lost report is a service bug, never a statistic)");
  }
  return Status::OK();
}

std::vector<PublishedWindow> AggregationService::PublishedWindows() const {
  std::lock_guard<std::mutex> lock(publish_mu_);
  return published_;
}

std::vector<unsigned char> AggregationService::SerializeSnapshot(
    std::uint64_t resume_cursor) const {
  BlobWriter w;
  w.U32(kSnapshotBlobVersion);
  w.U64(resume_cursor);
  w.U64(watermark_);
  w.U64(sealed_before_.load(std::memory_order_acquire));
  w.U64(next_window_);
  w.U64(max_pane_seen_.load(std::memory_order_acquire));
  w.U64(any_accepted_.load(std::memory_order_acquire) ? 1 : 0);
  const ServiceStats s = Stats();
  w.U64(s.submitted);
  w.U64(s.accepted);
  w.U64(s.accepted_payload_bytes);
  w.U64(s.deduped);
  w.U64(s.shed_queue_full);
  w.U64(s.shed_late);
  w.U64(s.shed_quarantined);
  w.U64(s.rejected_malformed);
  w.U64(s.rejected_invalid);
  w.U64(s.rejected_budget);
  w.U64(s.quarantined_tenants);
  w.U64(s.failed_snapshots);
  w.U64(s.published_windows);
  w.U64(s.published_reports);
  {
    std::lock_guard<std::mutex> lock(publish_mu_);
    // Published estimates are stored verbatim (not recomputed on
    // restore): their pane aggregates are already pruned, and verbatim
    // bits are what make a restored run's output diff-identical.
    w.U64(published_.size());
    for (const PublishedWindow& window : published_) {
      w.U64(window.index);
      w.U64(window.report_count);
      w.U64(window.estimate.size());
      for (const double v : window.estimate) w.F64(v);
    }
    w.U64(pane_aggregates_.size());
    for (const auto& [pane, aggregate] : pane_aggregates_) {
      w.U64(pane);
      w.U64(aggregate.report_count);
      w.Span(aggregate.state);
    }
  }
  w.U64(groups_.size());
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    GroupState& group = *groups_[g];
    std::lock_guard<std::mutex> lock(group.mu);
    w.U64(group.tenants.size());
    for (const auto& [tenant, state] : group.tenants) {
      w.U64(tenant);
      w.U64(state.accepted);
      w.U64(state.invalid_streak);
      w.U64(state.quarantined ? 1 : 0);
      w.U64(state.seen.intervals().size());
      for (const auto& [lo, hi] : state.seen.intervals()) {
        w.U64(lo);
        w.U64(hi);
      }
    }
    w.U64(group.panes.size());
    for (const auto& [pane, buffer] : group.panes) {
      w.U64(pane);
      w.U64(buffer.size());
      for (const BufferedReport& r : buffer) {
        w.U64(r.tenant);
        w.U64(r.sequence);
        w.U64(r.report.entries.size());
        for (const protocol::DimensionReport& entry : r.report.entries) {
          w.U64(entry.dimension);
          w.F64(entry.value);
        }
      }
    }
  }
  return w.bytes;
}

Status AggregationService::RestoreSnapshot(
    std::span<const unsigned char> blob) {
  BlobReader r{blob};
  std::uint32_t version = 0;
  HDLDP_RETURN_NOT_OK(r.U32(&version));
  if (version != kSnapshotBlobVersion) {
    return Status::DataLoss("service snapshot: unsupported blob version " +
                            std::to_string(version));
  }
  HDLDP_RETURN_NOT_OK(r.U64(&resume_cursor_));
  HDLDP_RETURN_NOT_OK(r.U64(&watermark_));
  std::uint64_t sealed = 0;
  HDLDP_RETURN_NOT_OK(r.U64(&sealed));
  sealed_before_.store(sealed, std::memory_order_release);
  HDLDP_RETURN_NOT_OK(r.U64(&next_window_));
  std::uint64_t max_pane = 0;
  HDLDP_RETURN_NOT_OK(r.U64(&max_pane));
  max_pane_seen_.store(max_pane, std::memory_order_release);
  std::uint64_t any = 0;
  HDLDP_RETURN_NOT_OK(r.U64(&any));
  any_accepted_.store(any != 0, std::memory_order_release);
  const auto restore_counter = [&r](std::atomic<std::uint64_t>* c) {
    std::uint64_t v = 0;
    const Status status = r.U64(&v);
    if (status.ok()) c->store(v, std::memory_order_release);
    return status;
  };
  HDLDP_RETURN_NOT_OK(restore_counter(&stats_.submitted));
  HDLDP_RETURN_NOT_OK(restore_counter(&stats_.accepted));
  HDLDP_RETURN_NOT_OK(restore_counter(&stats_.accepted_payload_bytes));
  HDLDP_RETURN_NOT_OK(restore_counter(&stats_.deduped));
  HDLDP_RETURN_NOT_OK(restore_counter(&stats_.shed_queue_full));
  HDLDP_RETURN_NOT_OK(restore_counter(&stats_.shed_late));
  HDLDP_RETURN_NOT_OK(restore_counter(&stats_.shed_quarantined));
  HDLDP_RETURN_NOT_OK(restore_counter(&stats_.rejected_malformed));
  HDLDP_RETURN_NOT_OK(restore_counter(&stats_.rejected_invalid));
  HDLDP_RETURN_NOT_OK(restore_counter(&stats_.rejected_budget));
  HDLDP_RETURN_NOT_OK(restore_counter(&stats_.quarantined_tenants));
  HDLDP_RETURN_NOT_OK(restore_counter(&stats_.failed_snapshots));
  HDLDP_RETURN_NOT_OK(restore_counter(&stats_.published_windows));
  HDLDP_RETURN_NOT_OK(restore_counter(&stats_.published_reports));
  std::uint64_t published_count = 0;
  HDLDP_RETURN_NOT_OK(r.U64(&published_count));
  published_.clear();
  // Counts come from the blob; reserve only what the remaining bytes
  // could possibly encode so a corrupt count cannot force a wild
  // allocation (each window needs >= 24 bytes).
  published_.reserve(std::min<std::uint64_t>(
      published_count, (blob.size() - r.pos) / 24));
  for (std::uint64_t i = 0; i < published_count; ++i) {
    PublishedWindow window;
    HDLDP_RETURN_NOT_OK(r.U64(&window.index));
    HDLDP_RETURN_NOT_OK(r.U64(&window.report_count));
    std::uint64_t dims = 0;
    HDLDP_RETURN_NOT_OK(r.U64(&dims));
    if (dims > (blob.size() - r.pos) / 8) {
      return Status::DataLoss("service snapshot: estimate dims exceed blob");
    }
    window.estimate.resize(dims);
    for (std::uint64_t j = 0; j < dims; ++j) {
      HDLDP_RETURN_NOT_OK(r.F64(&window.estimate[j]));
    }
    published_.push_back(std::move(window));
  }
  std::uint64_t pane_count = 0;
  HDLDP_RETURN_NOT_OK(r.U64(&pane_count));
  pane_aggregates_.clear();
  for (std::uint64_t i = 0; i < pane_count; ++i) {
    std::uint64_t pane = 0;
    PaneAggregate aggregate;
    HDLDP_RETURN_NOT_OK(r.U64(&pane));
    HDLDP_RETURN_NOT_OK(r.U64(&aggregate.report_count));
    HDLDP_RETURN_NOT_OK(r.Span(&aggregate.state));
    pane_aggregates_.emplace(pane, std::move(aggregate));
  }
  std::uint64_t group_count = 0;
  HDLDP_RETURN_NOT_OK(r.U64(&group_count));
  if (group_count != groups_.size()) {
    return Status::DataLoss("service snapshot: shard group count mismatch");
  }
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    GroupState& group = *groups_[g];
    std::uint64_t tenant_count = 0;
    HDLDP_RETURN_NOT_OK(r.U64(&tenant_count));
    for (std::uint64_t t = 0; t < tenant_count; ++t) {
      std::uint64_t tenant_id = 0;
      HDLDP_RETURN_NOT_OK(r.U64(&tenant_id));
      TenantState& tenant = group.tenants[tenant_id];
      HDLDP_RETURN_NOT_OK(r.U64(&tenant.accepted));
      HDLDP_RETURN_NOT_OK(r.U64(&tenant.invalid_streak));
      std::uint64_t quarantined = 0;
      HDLDP_RETURN_NOT_OK(r.U64(&quarantined));
      tenant.quarantined = quarantined != 0;
      std::uint64_t interval_count = 0;
      HDLDP_RETURN_NOT_OK(r.U64(&interval_count));
      for (std::uint64_t i = 0; i < interval_count; ++i) {
        std::uint64_t lo = 0;
        std::uint64_t hi = 0;
        HDLDP_RETURN_NOT_OK(r.U64(&lo));
        HDLDP_RETURN_NOT_OK(r.U64(&hi));
        if (hi <= lo) {
          return Status::DataLoss("service snapshot: bad dedup interval");
        }
        tenant.seen.RestoreInterval(lo, hi);
      }
      if (options_.tenant_epsilon > 0.0 && tenant.accepted > 0) {
        HDLDP_ASSIGN_OR_RETURN(
            protocol::BudgetAccountant ledger,
            protocol::BudgetAccountant::Create(options_.tenant_epsilon));
        // Re-spending `accepted` equal charges reproduces the ledger's
        // spent total bit for bit (one scalar chain of equal adds).
        for (std::uint64_t i = 0; i < tenant.accepted; ++i) {
          HDLDP_RETURN_NOT_OK(ledger.Spend(options_.per_report_epsilon));
        }
        tenant.ledger.emplace(std::move(ledger));
      }
    }
    std::uint64_t pane_buffer_count = 0;
    HDLDP_RETURN_NOT_OK(r.U64(&pane_buffer_count));
    for (std::uint64_t i = 0; i < pane_buffer_count; ++i) {
      std::uint64_t pane = 0;
      HDLDP_RETURN_NOT_OK(r.U64(&pane));
      std::uint64_t report_count = 0;
      HDLDP_RETURN_NOT_OK(r.U64(&report_count));
      std::vector<BufferedReport>& buffer = group.panes[pane];
      buffer.reserve(std::min<std::uint64_t>(
          report_count, (blob.size() - r.pos) / 24));
      for (std::uint64_t j = 0; j < report_count; ++j) {
        BufferedReport report;
        HDLDP_RETURN_NOT_OK(r.U64(&report.tenant));
        HDLDP_RETURN_NOT_OK(r.U64(&report.sequence));
        std::uint64_t entries = 0;
        HDLDP_RETURN_NOT_OK(r.U64(&entries));
        report.report.entries.reserve(std::min<std::uint64_t>(
            entries, (blob.size() - r.pos) / 16));
        for (std::uint64_t e = 0; e < entries; ++e) {
          std::uint64_t dim = 0;
          double value = 0.0;
          HDLDP_RETURN_NOT_OK(r.U64(&dim));
          HDLDP_RETURN_NOT_OK(r.F64(&value));
          report.report.entries.push_back(protocol::DimensionReport{
              static_cast<std::uint32_t>(dim), value});
        }
        buffer.push_back(std::move(report));
      }
    }
  }
  if (r.pos != blob.size()) {
    return Status::DataLoss("service snapshot: trailing bytes");
  }
  return Status::OK();
}

}  // namespace service
}  // namespace hdldp
