// Event-time window geometry of the aggregation service.
//
// Reports carry an integer event-time tick; the service publishes one
// estimate per *window* of `width` ticks, advancing by `slide` ticks
// (slide == width is the tumbling special case). Internally everything
// is pane-based, the standard decomposition for overlapping windows:
// with width a multiple of slide, a *pane* is one slide-length span of
// ticks, window w is exactly the panes [w, w + width/slide), and each
// report is folded into its single pane once — sliding windows then
// share sealed pane aggregates through MergeState instead of re-folding
// reports width/slide times.
//
// A pane seals once the watermark passes its end plus the allowed
// lateness; reports for sealed panes are shed (counted, never folded),
// which is what bounds estimate staleness under out-of-order arrival.

#ifndef HDLDP_SERVICE_WINDOW_H_
#define HDLDP_SERVICE_WINDOW_H_

#include <cstdint>

#include "common/status.h"

namespace hdldp {
namespace service {

/// \brief Tumbling/sliding window configuration, in event-time ticks.
struct WindowConfig {
  /// Ticks covered by one published window (> 0).
  std::uint64_t width = 1;
  /// Ticks between consecutive window starts; 0 means `width`
  /// (tumbling). Must divide `width`.
  std::uint64_t slide = 0;
  /// Grace ticks: pane p seals only once the watermark reaches
  /// (p + 1) * slide + lateness, so reports up to `lateness` ticks out
  /// of order still land.
  std::uint64_t lateness = 0;

  /// Normalizes slide (0 -> width) and validates the geometry.
  Status Validate() {
    if (width == 0) {
      return Status::InvalidArgument("window width must be > 0 ticks");
    }
    if (slide == 0) slide = width;
    if (slide > width || width % slide != 0) {
      return Status::InvalidArgument(
          "window slide must divide the window width (pane decomposition)");
    }
    return Status::OK();
  }

  /// Panes per window (1 for tumbling).
  std::uint64_t panes_per_window() const { return width / slide; }

  /// Pane owning a report with event-time `tick`.
  std::uint64_t PaneOf(std::uint64_t tick) const { return tick / slide; }

  /// \brief First pane NOT yet sealable at `watermark`: panes
  /// [0, SealablePanes(w)) may seal. Monotone in the watermark.
  std::uint64_t SealablePanes(std::uint64_t watermark) const {
    if (watermark < lateness) return 0;
    return (watermark - lateness) / slide;
  }
};

}  // namespace service
}  // namespace hdldp

#endif  // HDLDP_SERVICE_WINDOW_H_
