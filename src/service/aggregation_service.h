// service::AggregationService — the online collector: asynchronous
// ingestion of wire-format LDP reports, rolling tumbling/sliding-window
// estimates, graceful degradation under overload, and crash-safe
// snapshots.
//
// Architecture (one box per layer, data flowing left to right):
//
//   Submit(bytes) --> per-worker BoundedQueue --> worker threads
//        |                (backpressure or        (decode, dedup,
//        |                 accounted shedding)     budget, buffer)
//        v                                              |
//   typed Status                                  shard groups
//                                                       |
//   AdvanceWatermark --> seal panes: sort + fold each group's buffer,
//                        reduce the 64 group partials through
//                        engine::ReduceChunks with MergeState
//                             |
//                             v
//                   pane aggregates --> publish windows (MergeState of
//                                       panes, in pane order)
//
// Robustness contract:
//
//   * Degradation is never silent. Every submitted report lands in
//     exactly one stats bucket: accepted, deduped, shed_queue_full,
//     shed_late, shed_quarantined, rejected_malformed, rejected_invalid,
//     or rejected_budget — VerifyReconciliation() checks the sum
//     exactly. A snapshot write that fails raises the degraded flag and
//     failed_snapshots counter instead of corrupting or blocking
//     published estimates.
//   * Byzantine tenants are contained. With max_invalid_per_tenant set,
//     a tenant whose reports are rejected (malformed, out-of-range, or
//     budget-violating) that many times in a row is quarantined: every
//     later report from it is counted-shed at O(1) without decoding.
//     Because a tenant's reports route to one fixed worker queue in
//     submission order, the streak — and therefore the quarantine
//     decision — is identical at every worker count.
//   * Ingestion is idempotent: (tenant, sequence) identifies a report,
//     and retransmits/replays count as deduped without touching
//     estimates. This is also what makes at-least-once replay after a
//     crash safe.
//   * Budget enforcement is typed and order-invariant: with a per-tenant
//     budget configured, sequence s is admitted iff
//     s < BudgetAccountant::Capacity(per-report epsilon) — a pure
//     function of the stream, so which reports are rejected never
//     depends on arrival order or worker count; accepted reports charge
//     a per-tenant BudgetAccountant ledger that snapshots carry across
//     restarts.
//   * Estimates are worker-count invariant. All per-report state is
//     keyed by shard group (a pure hash of the tenant, 64 groups);
//     sealing sorts each group's pane buffer by (tenant, sequence)
//     before folding and merges group partials in group order through
//     the engine's deterministic reduction tree, so the published bits
//     depend only on the accepted set — which is itself deterministic
//     whenever Submit/AdvanceWatermark calls are sequenced (the replay
//     driver) or backpressure mode is used. Snapshots therefore exclude
//     the worker count from their digest, exactly like the batch
//     checkpoint codec excludes the thread count.
//   * Crash safety: SaveSnapshot() persists the full quiesced service
//     state (watermark, dedup intervals, open pane buffers, sealed pane
//     aggregates, published estimates, ledgers, stats) as one CRC-framed
//     SnapshotFile record; Create() on the same path restores it and
//     the run republishes bit-identical estimates.
//
// Event-time semantics live in window.h; the deterministic report
// stream driving tests and benches lives in report_stream.h.

#ifndef HDLDP_SERVICE_AGGREGATION_SERVICE_H_
#define HDLDP_SERVICE_AGGREGATION_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/file_writer.h"
#include "common/mpmc_queue.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "mech/mechanism.h"
#include "protocol/budget.h"
#include "protocol/report.h"
#include "protocol/snapshot.h"
#include "protocol/wire.h"
#include "service/payload_codec.h"
#include "service/seq_interval_set.h"
#include "service/window.h"

namespace hdldp {
namespace service {

/// Shard groups all per-report state is keyed by. A pure function of the
/// tenant (never of the worker count), so group state restores onto any
/// number of workers; 64 groups keep 4–16 workers busy while the group
/// partial reduce stays a flat in-order merge.
inline constexpr std::size_t kNumShardGroups = 64;

/// What Submit() does when a worker's ingestion queue is full.
enum class OverloadPolicy {
  /// Refuse the report (counted shed_queue_full, Unavailable returned):
  /// bounded memory and bounded submit latency, lossy under sustained
  /// overload. The serving default.
  kShed,
  /// Block the submitting thread until space opens (backpressure):
  /// lossless, so the accepted set stays deterministic — what replay
  /// and the equivalence tests use.
  kBlock,
};

/// \brief Configuration of one service instance.
struct ServiceOptions {
  /// Aggregated dimensionality: d for mean workloads, the expanded
  /// one-hot entry count for freq workloads.
  std::size_t num_dims = 0;
  /// Map from the mechanism's native output space back to the data
  /// domain, applied when publishing estimates.
  mech::DomainMap domain_map;
  /// Optional per-dimension additive bias correction (empty = none).
  std::vector<double> native_bias;

  /// Report validation: entries per report (0 = don't check) and the
  /// admissible native-space value range (infinities = unbounded).
  std::size_t expected_entries = 0;
  double output_lo = -std::numeric_limits<double>::infinity();
  double output_hi = std::numeric_limits<double>::infinity();

  /// Wire encoding of ingested payloads. kDense/kSampled run the
  /// version-1 numeric decode; oue|olh|hadamard1 decode through a
  /// PayloadCodec whose unbiased entry values land in the data domain
  /// (use an identity domain_map and the codec's output_lo/hi —
  /// ReportStream::CodecOptions() hands this struct back pre-filled).
  /// Create() rejects a codec whose service_dims() differ from num_dims.
  PayloadCodecOptions codec;

  /// Ingestion workers (0 = one per hardware thread). Published
  /// estimates never depend on this.
  std::size_t num_workers = 1;
  /// Capacity of each worker's ingestion queue.
  std::size_t queue_capacity = 1024;
  OverloadPolicy overload = OverloadPolicy::kShed;

  /// Event-time window geometry.
  WindowConfig window;

  /// Per-tenant total privacy budget (0 disables budget enforcement).
  double tenant_epsilon = 0.0;
  /// Budget one accepted report charges; required > 0 when
  /// tenant_epsilon > 0.
  double per_report_epsilon = 0.0;

  /// Byzantine-tenant quarantine: a tenant whose reports are rejected
  /// (malformed, out-of-range, or budget-violating) this many times
  /// CONSECUTIVELY is quarantined — all its later reports are shed at
  /// O(1) into the shed_quarantined bucket without decoding. An
  /// accepted report resets the streak; dedups and late sheds leave it
  /// untouched. 0 disables quarantine. Part of the snapshot digest.
  std::uint64_t max_invalid_per_tenant = 0;

  /// Snapshot file path; empty disables SaveSnapshot().
  std::string checkpoint_path;
  /// Write-fault injection for the snapshot path
  /// (common/file_writer.h). A Save that fails under an injected (or
  /// real) disk fault degrades the service — failed_snapshots counts
  /// it, Stats().degraded reports it — without touching estimates.
  WriteFaultSchedule snapshot_write_faults;
  /// Caller context folded into the snapshot digest (stream seed,
  /// mechanism, workload, ...) so a checkpoint never resumes a
  /// different run. Worker count and queue capacity are deliberately
  /// excluded.
  std::string digest_tag;
};

/// \brief Ingestion and publication counters. Every submitted report
/// lands in exactly one of the buckets below `submitted`.
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  /// Wire payload bytes of accepted reports (the communication ledger:
  /// accepted_payload_bytes / accepted = bytes per accepted user).
  std::uint64_t accepted_payload_bytes = 0;
  std::uint64_t deduped = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_late = 0;
  /// Reports shed because their tenant is quarantined.
  std::uint64_t shed_quarantined = 0;
  std::uint64_t rejected_malformed = 0;
  std::uint64_t rejected_invalid = 0;
  std::uint64_t rejected_budget = 0;
  /// Tenants quarantined so far (monotone; never un-quarantined).
  std::uint64_t quarantined_tenants = 0;
  /// SaveSnapshot calls whose durable write failed (absorbed, see
  /// `degraded`).
  std::uint64_t failed_snapshots = 0;
  /// True iff at least one snapshot write failed: the service keeps
  /// publishing exact estimates but can no longer promise crash-safe
  /// resume past the last good snapshot.
  bool degraded = false;
  std::uint64_t published_windows = 0;
  /// Sum of PublishedWindow::report_count (a report counts once per
  /// window containing it, so for sliding windows this exceeds
  /// accepted).
  std::uint64_t published_reports = 0;
};

/// \brief One published rolling estimate.
struct PublishedWindow {
  /// Window index w: the window covering ticks
  /// [w * slide, w * slide + width).
  std::uint64_t index = 0;
  /// Accepted reports folded into this window.
  std::uint64_t report_count = 0;
  /// Data-domain estimate per dimension.
  std::vector<double> estimate;
};

/// \brief The online aggregation service. Thread-safe: Submit() may be
/// called from any number of producer threads; AdvanceWatermark(),
/// Drain(), SaveSnapshot() and Finish() must be externally sequenced
/// with each other (one driver thread).
class AggregationService {
 public:
  /// \brief Validates options, restores checkpoint state when
  /// `checkpoint_path` holds a matching snapshot, and starts the worker
  /// pool.
  static Result<std::unique_ptr<AggregationService>> Create(
      ServiceOptions options);

  ~AggregationService();

  AggregationService(const AggregationService&) = delete;
  AggregationService& operator=(const AggregationService&) = delete;

  /// \brief Submits one EncodeEnvelope buffer for asynchronous
  /// ingestion. Returns OK once the report is queued; DataLoss for a
  /// corrupt envelope (counted rejected_malformed); Unavailable when the
  /// target queue is full under OverloadPolicy::kShed (counted
  /// shed_queue_full) or the service is stopped. Payload decoding,
  /// dedup, budget and validation run on the worker — their outcomes
  /// surface in Stats(), not here.
  Status Submit(std::span<const std::uint8_t> envelope_bytes);

  /// \brief Advances the event-time watermark: waits for all queued
  /// reports to be processed (quiescence), seals every pane whose
  /// lateness grace has expired, and publishes every window whose panes
  /// are all sealed. Monotone; stale watermarks are no-ops.
  Status AdvanceWatermark(std::uint64_t watermark);

  /// \brief End of stream: quiesces, seals everything with buffered
  /// data regardless of watermark, and publishes all remaining windows.
  Status Drain();

  /// \brief Persists the full service state as one snapshot record
  /// (quiesces first). `resume_cursor` is an opaque driver position
  /// (e.g. stream reports emitted so far) handed back by
  /// resume_cursor() after a restore. Requires a checkpoint_path.
  ///
  /// Graceful degradation: a durable-write failure (ResourceExhausted /
  /// DataLoss, injected or real) is absorbed — the previous on-disk
  /// snapshot survives intact (SnapshotFile rolls the torn tail back),
  /// failed_snapshots increments, Stats().degraded turns true, and OK
  /// is returned so the serving loop keeps publishing exact estimates.
  Status SaveSnapshot(std::uint64_t resume_cursor);

  /// \brief Closes and removes the spent checkpoint (call on successful
  /// completion, like the batch pipelines remove theirs).
  Status Finish();

  /// True iff Create() restored state from an existing checkpoint.
  bool resumed() const { return resumed_; }
  /// Driver position stored by the restored snapshot (0 when fresh).
  std::uint64_t resume_cursor() const { return resume_cursor_; }

  /// Snapshot of the counters (quiesce first for exact totals).
  ServiceStats Stats() const;

  /// \brief Checks the shedding ledger: submitted must equal the sum of
  /// the per-cause buckets exactly (call quiesced). Internal on
  /// mismatch — a lost report is a service bug, never a statistic.
  Status VerifyReconciliation() const;

  /// All windows published so far (restored ones included), ascending.
  std::vector<PublishedWindow> PublishedWindows() const;

  std::size_t num_workers() const { return workers_; }

 private:
  struct TenantState {
    SeqIntervalSet seen;
    std::uint64_t accepted = 0;
    // Consecutive rejected reports; resets on accept. Drives the
    // quarantine trip wire (ServiceOptions::max_invalid_per_tenant).
    std::uint64_t invalid_streak = 0;
    bool quarantined = false;
    std::optional<protocol::BudgetAccountant> ledger;
  };

  struct BufferedReport {
    std::uint64_t tenant = 0;
    std::uint64_t sequence = 0;
    protocol::UserReport report;
  };

  // All mutable per-report state of one shard group, guarded by `mu`.
  // A group is touched by the one worker its reports route to, plus the
  // driver thread during seal/snapshot — contention is the exception.
  struct GroupState {
    std::mutex mu;
    std::map<std::uint64_t, TenantState> tenants;
    std::map<std::uint64_t, std::vector<BufferedReport>> panes;
  };

  struct PaneAggregate {
    std::uint64_t report_count = 0;
    std::vector<unsigned char> state;
  };

  explicit AggregationService(ServiceOptions options);

  static std::size_t GroupOf(std::uint64_t tenant);

  void WorkerLoop(std::size_t worker);
  void Process(protocol::ReportEnvelope envelope);
  void Quiesce();
  // Seals panes [sealed_before_, pane_limit) and publishes completed
  // windows. Driver thread only, after Quiesce().
  Status SealAndPublish(std::uint64_t pane_limit);
  Status PublishWindow(std::uint64_t window);

  std::vector<unsigned char> SerializeSnapshot(
      std::uint64_t resume_cursor) const;
  Status RestoreSnapshot(std::span<const unsigned char> blob);

  ServiceOptions options_;
  std::size_t workers_ = 1;
  std::uint64_t budget_capacity_ = 0;  // admitted sequences per tenant
  // Compact-payload decoder (absent on the numeric path). Stateless;
  // shared by all workers without locking.
  std::optional<PayloadCodec> codec_;

  std::vector<std::unique_ptr<BoundedQueue<protocol::ReportEnvelope>>>
      queues_;
  std::unique_ptr<ThreadPool> pool_;

  std::vector<std::unique_ptr<GroupState>> groups_;

  // Quiescence: +1 per queued report, -1 once fully processed.
  std::atomic<std::uint64_t> pending_{0};
  std::mutex quiesce_mu_;
  std::condition_variable quiesce_cv_;

  // Panes < sealed_before_ are sealed; workers shed reports for them.
  std::atomic<std::uint64_t> sealed_before_{0};
  // Highest pane any accepted report landed in (bounds Drain's seal).
  std::atomic<std::uint64_t> max_pane_seen_{0};
  std::atomic<bool> any_accepted_{false};
  std::uint64_t watermark_ = 0;    // driver thread only
  std::uint64_t next_window_ = 0;  // driver thread only

  // Driver-thread state guarded against concurrent readers of
  // PublishedWindows()/Stats() by publish_mu_.
  mutable std::mutex publish_mu_;
  std::map<std::uint64_t, PaneAggregate> pane_aggregates_;
  std::vector<PublishedWindow> published_;

  struct AtomicStats {
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> accepted_payload_bytes{0};
    std::atomic<std::uint64_t> deduped{0};
    std::atomic<std::uint64_t> shed_queue_full{0};
    std::atomic<std::uint64_t> shed_late{0};
    std::atomic<std::uint64_t> shed_quarantined{0};
    std::atomic<std::uint64_t> rejected_malformed{0};
    std::atomic<std::uint64_t> rejected_invalid{0};
    std::atomic<std::uint64_t> rejected_budget{0};
    std::atomic<std::uint64_t> quarantined_tenants{0};
    std::atomic<std::uint64_t> failed_snapshots{0};
    std::atomic<std::uint64_t> published_windows{0};
    std::atomic<std::uint64_t> published_reports{0};
  };
  AtomicStats stats_;

  std::optional<protocol::SnapshotFile> snapshot_;
  std::uint64_t snapshot_seq_ = 0;
  bool resumed_ = false;
  std::uint64_t resume_cursor_ = 0;
  std::atomic<bool> stopped_{false};
};

}  // namespace service
}  // namespace hdldp

#endif  // HDLDP_SERVICE_AGGREGATION_SERVICE_H_
