// service::PayloadCodec — the service-side decoder for the compact
// report encodings (protocol/wire.h kinds 2-4).
//
// The aggregation service folds protocol::UserReport entries through a
// MeanAggregator, so each compact payload is decoded into the entries of
// an *unbiased per-report estimate*: averaging the decoded values over
// the reports covering a dimension reproduces the oracle's closed-form
// estimator exactly (integer support counts divided by report counts).
//
//   OUE        bit b of category k   ->  (b - q) / (p - q)
//   OLH        reported bucket v     ->  (1[hash(k) == v] - 1/g) / (p - 1/g)
//   Hadamard1  sign bit at index i   ->  bit * m * (1/c) * H(i, pos)
//
// Decoded values land directly in the data domain (frequencies for the
// oracles, [-1, 1] means for Hadamard), so the service runs with an
// identity DomainMap and the codec's output_lo/hi as the admissible
// range. Geometry mismatches (wrong cardinality, wrong g for the
// configured epsilon, wrong dimensionality) are decode errors — a report
// from a differently-configured client never silently biases estimates.

#ifndef HDLDP_SERVICE_PAYLOAD_CODEC_H_
#define HDLDP_SERVICE_PAYLOAD_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/result.h"
#include "freq/encoding.h"
#include "protocol/hadamard.h"
#include "protocol/report.h"
#include "protocol/wire.h"

namespace hdldp {
namespace service {

/// \brief Geometry + budget of the compact encoding a service instance
/// ingests. kDense/kSampled mean "payloads are version-1 numeric
/// reports" and need none of the other fields.
struct PayloadCodecOptions {
  protocol::ReportEncoding encoding = protocol::ReportEncoding::kDense;
  /// Total per-report privacy budget eps (compact encodings only).
  double epsilon = 0.0;
  /// Sampled dimensions/questions per report m (compact encodings only).
  std::size_t report_dims = 0;
  /// kOue/kOlh: question count q and per-question category count c. The
  /// service aggregates over q * c one-hot entries.
  std::size_t num_questions = 0;
  std::size_t num_categories = 0;
  /// kHadamard1: mean dimensionality d.
  std::size_t num_dims = 0;
};

/// \brief Validated decoder built from PayloadCodecOptions. Stateless
/// after Create; Decode is const and thread-safe (workers share one).
class PayloadCodec {
 public:
  /// Rejects kDense/kSampled (no codec needed) and inconsistent
  /// geometry/budget.
  static Result<PayloadCodec> Create(const PayloadCodecOptions& options);

  protocol::ReportEncoding encoding() const { return options_.encoding; }

  /// Aggregated dimensionality the service must run at: q * c for the
  /// frequency oracles, d for Hadamard.
  std::size_t service_dims() const { return service_dims_; }
  /// Entries one decoded report carries: m * c or m.
  std::size_t expected_entries() const { return expected_entries_; }
  /// Admissible decoded value range (the two-point support of each
  /// unbiased entry estimate).
  double output_lo() const { return output_lo_; }
  double output_hi() const { return output_hi_; }

  /// \brief Decodes one wire payload into unbiased report entries.
  /// InvalidArgument/DataLoss on malformed bytes or geometry mismatch.
  Result<protocol::UserReport> Decode(
      std::span<const std::uint8_t> payload) const;

 private:
  explicit PayloadCodec(PayloadCodecOptions options);

  PayloadCodecOptions options_;
  freq::OueParams oue_;
  freq::OlhParams olh_;
  protocol::Hadamard1Params hadamard_;
  std::size_t service_dims_ = 0;
  std::size_t expected_entries_ = 0;
  double output_lo_ = 0.0;
  double output_hi_ = 0.0;
};

}  // namespace service
}  // namespace hdldp

#endif  // HDLDP_SERVICE_PAYLOAD_CODEC_H_
