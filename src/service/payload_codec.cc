#include "service/payload_codec.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

namespace hdldp {
namespace service {

PayloadCodec::PayloadCodec(PayloadCodecOptions options)
    : options_(std::move(options)) {}

Result<PayloadCodec> PayloadCodec::Create(const PayloadCodecOptions& options) {
  using protocol::ReportEncoding;
  if (options.encoding == ReportEncoding::kDense ||
      options.encoding == ReportEncoding::kSampled) {
    return Status::InvalidArgument(
        "numeric payloads need no codec; construct one only for "
        "oue|olh|hadamard1");
  }
  if (options.report_dims == 0) {
    return Status::InvalidArgument("payload codec requires report_dims > 0");
  }
  PayloadCodec codec(options);
  if (options.encoding == ReportEncoding::kHadamard1) {
    HDLDP_ASSIGN_OR_RETURN(
        codec.hadamard_,
        protocol::Hadamard1Params::Create(options.num_dims,
                                          options.report_dims,
                                          options.epsilon));
    codec.service_dims_ = options.num_dims;
    codec.expected_entries_ = options.report_dims;
    codec.output_hi_ = codec.hadamard_.bound * codec.hadamard_.c_inv;
    codec.output_lo_ = -codec.output_hi_;
    return codec;
  }
  // Frequency oracles: per-question budget eps / m.
  if (options.num_questions == 0 || options.num_categories < 2) {
    return Status::InvalidArgument(
        "frequency-oracle codec requires num_questions > 0 and "
        "num_categories >= 2");
  }
  if (options.report_dims > options.num_questions) {
    return Status::InvalidArgument(
        "report_dims exceeds the question count");
  }
  const double per_dim_epsilon =
      options.epsilon / static_cast<double>(options.report_dims);
  codec.service_dims_ = options.num_questions * options.num_categories;
  codec.expected_entries_ = options.report_dims * options.num_categories;
  if (options.encoding == ReportEncoding::kOue) {
    HDLDP_ASSIGN_OR_RETURN(codec.oue_,
                           freq::OueParams::FromEpsilon(per_dim_epsilon));
    codec.output_lo_ = codec.oue_.EntryValue(false);
    codec.output_hi_ = codec.oue_.EntryValue(true);
  } else {
    HDLDP_ASSIGN_OR_RETURN(codec.olh_,
                           freq::OlhParams::FromEpsilon(per_dim_epsilon));
    codec.output_lo_ = codec.olh_.EntryValue(false);
    codec.output_hi_ = codec.olh_.EntryValue(true);
  }
  return codec;
}

Result<protocol::UserReport> PayloadCodec::Decode(
    std::span<const std::uint8_t> payload) const {
  using protocol::ReportEncoding;
  HDLDP_ASSIGN_OR_RETURN(const ReportEncoding kind,
                         protocol::PayloadEncoding(payload));
  if (kind != options_.encoding) {
    return Status::InvalidArgument(
        "payload kind does not match the configured service encoding");
  }
  protocol::UserReport report;
  switch (options_.encoding) {
    case ReportEncoding::kOue: {
      HDLDP_ASSIGN_OR_RETURN(const protocol::OuePayload decoded,
                             protocol::DecodeOuePayload(payload));
      if (decoded.num_dims != options_.num_questions ||
          decoded.dims.size() != options_.report_dims) {
        return Status::InvalidArgument(
            "OUE payload geometry mismatch (questions / sampled count)");
      }
      report.entries.reserve(expected_entries_);
      for (const protocol::OuePayloadDim& dim : decoded.dims) {
        if (dim.cardinality != options_.num_categories) {
          return Status::InvalidArgument(
              "OUE payload cardinality mismatch");
        }
        const std::size_t base = dim.dimension * options_.num_categories;
        for (std::size_t k = 0; k < options_.num_categories; ++k) {
          report.entries.push_back(protocol::DimensionReport{
              static_cast<std::uint32_t>(base + k),
              oue_.EntryValue(dim.Bit(k))});
        }
      }
      return report;
    }
    case ReportEncoding::kOlh: {
      HDLDP_ASSIGN_OR_RETURN(const protocol::OlhPayload decoded,
                             protocol::DecodeOlhPayload(payload));
      if (decoded.num_dims != options_.num_questions ||
          decoded.dims.size() != options_.report_dims) {
        return Status::InvalidArgument(
            "OLH payload geometry mismatch (questions / sampled count)");
      }
      report.entries.reserve(expected_entries_);
      for (const protocol::OlhPayloadDim& dim : decoded.dims) {
        if (dim.g != olh_.g) {
          return Status::InvalidArgument(
              "OLH payload g does not match the configured epsilon");
        }
        const std::size_t base = dim.dimension * options_.num_categories;
        const freq::OlhHasher hasher(dim.hash_seed);
        for (std::size_t k = 0; k < options_.num_categories; ++k) {
          const bool supports =
              hasher.Bucket(static_cast<std::uint32_t>(k), olh_.g) ==
              dim.value;
          report.entries.push_back(protocol::DimensionReport{
              static_cast<std::uint32_t>(base + k),
              olh_.EntryValue(supports)});
        }
      }
      return report;
    }
    case ReportEncoding::kHadamard1: {
      HDLDP_ASSIGN_OR_RETURN(const protocol::Hadamard1Payload decoded,
                             protocol::DecodeHadamard1Payload(payload));
      if (decoded.num_dims != hadamard_.num_dims ||
          decoded.report_dims != hadamard_.report_dims) {
        return Status::InvalidArgument(
            "Hadamard payload geometry mismatch (d / m)");
      }
      if (decoded.index >= hadamard_.padded) {
        return Status::InvalidArgument(
            "Hadamard payload index exceeds the padded order");
      }
      std::vector<std::uint32_t> dims;
      protocol::Hadamard1SampleDims(decoded.sample_seed, hadamard_.num_dims,
                                    hadamard_.report_dims, &dims);
      report.entries.reserve(dims.size());
      for (std::size_t pos = 0; pos < dims.size(); ++pos) {
        report.entries.push_back(protocol::DimensionReport{
            dims[pos],
            protocol::Hadamard1EntryValue(hadamard_, decoded.index,
                                          static_cast<std::uint32_t>(pos),
                                          decoded.positive)});
      }
      return report;
    }
    default:
      return Status::Internal("payload codec holds a numeric encoding");
  }
}

}  // namespace service
}  // namespace hdldp
