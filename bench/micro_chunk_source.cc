// Chunk-source delivery rows for bench_micro. Kept in a separate
// translation unit on purpose: folding <filesystem> plus the data-source
// headers into bench_micro.cc pushed that TU over GCC's unit-growth
// inlining budget and measurably deflated the pre-existing hot
// PerturbLanes/IngestLanes instantiations (~15% on the pinned
// lane-vs-plan ratio rows). A separate TU leaves their codegen alone.

#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>

#include "data/chunk_source.h"
#include "data/dataset.h"
#include "data/generator_source.h"
#include "data/generators.h"
#include "data/shard.h"

namespace {

// Chunk delivery throughput of the three ChunkSource families over the
// same chunk-keyed population: resident zero-copy spans, mmap-windowed
// shard files, and on-demand synthesis. Every delivered double is
// touched (summed), so the shard rows pay their page faults and the
// ratios compare what the estimation engine actually experiences per
// delivery path. Items are delivered doubles.
void BM_ChunkSourceRead(benchmark::State& state, const char* kind) {
  constexpr std::size_t kUsers = 8 * hdldp::data::kUsersPerChunk;
  constexpr std::size_t kDims = 16;
  hdldp::data::GaussianSpec spec;
  spec.num_users = kUsers;
  spec.num_dims = kDims;
  const std::uint64_t seed = 17;
  std::optional<hdldp::data::Dataset> dataset;
  std::optional<hdldp::data::ResidentChunkSource> resident;
  std::optional<hdldp::data::GeneratorChunkSource> generator;
  std::optional<hdldp::data::ShardFileSource> shard;
  const hdldp::data::ChunkSource* source = nullptr;
  if (std::string_view(kind) == "resident") {
    dataset = hdldp::data::GenerateChunkKeyed(spec, seed).value();
    resident.emplace(&*dataset);
    source = &*resident;
  } else if (std::string_view(kind) == "generator") {
    generator = hdldp::data::GeneratorChunkSource::Create(spec, seed).value();
    source = &*generator;
  } else {
    const std::string dir =
        (std::filesystem::temp_directory_path() / "hdldp_bench_shard")
            .string();
    std::filesystem::remove_all(dir);
    const auto writer_source =
        hdldp::data::GeneratorChunkSource::Create(spec, seed).value();
    if (!hdldp::data::WriteShards(writer_source, dir).ok()) {
      state.SkipWithError("shard write failed");
      return;
    }
    shard = hdldp::data::ShardFileSource::Open(dir).value();
    source = &*shard;
  }
  hdldp::data::ChunkBuffer buffer;
  double sink = 0.0;
  for (auto _ : state) {
    for (std::size_t c = 0; c < source->num_chunks(); ++c) {
      const auto rows = source->Chunk(c, &buffer);
      if (!rows.ok()) {
        state.SkipWithError("chunk pull failed");
        return;
      }
      for (const double v : rows.value()) sink += v;
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kUsers * kDims);
}

}  // namespace

BENCHMARK_CAPTURE(BM_ChunkSourceRead, resident, "resident");
BENCHMARK_CAPTURE(BM_ChunkSourceRead, shard, "shard");
BENCHMARK_CAPTURE(BM_ChunkSourceRead, generator, "generator");
