// Shared helpers for the paper-reproduction benchmark binaries.
//
// Every bench runs with no arguments at a reduced default scale so the
// whole suite finishes in minutes on a laptop; two environment variables
// restore paper scale:
//
//   HDLDP_BENCH_SCALE    divisor applied to user counts (default 10;
//                        set 1 for the paper's full populations)
//   HDLDP_BENCH_REPEATS  repetitions averaged per point (default 3;
//                        the paper uses 100)
//   HDLDP_BENCH_THREADS  max concurrent trials in the trial-parallel
//                        harness (default 0 = one per hardware thread;
//                        results are identical for every value)
//
// Output is aligned-text tables mirroring the paper's rows/series, so a
// run can be diffed against EXPERIMENTS.md.

#ifndef HDLDP_BENCH_BENCH_UTIL_H_
#define HDLDP_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace hdldp {
namespace bench {

/// Reads a positive integer environment variable with a default.
inline std::size_t EnvSize(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  const long parsed = std::atol(raw);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

/// User-count divisor (1 = paper scale).
inline std::size_t ScaleDivisor() { return EnvSize("HDLDP_BENCH_SCALE", 10); }

/// Repetitions per configuration.
inline std::size_t Repeats() { return EnvSize("HDLDP_BENCH_REPEATS", 3); }

/// Max concurrent trials (0 = one per hardware thread). Deterministic:
/// trial results never depend on this value, only wall-clock time does.
inline std::size_t MaxWorkers() {
  const char* raw = std::getenv("HDLDP_BENCH_THREADS");
  if (raw == nullptr) return 0;
  const long parsed = std::atol(raw);
  return parsed >= 0 ? static_cast<std::size_t>(parsed) : 0;
}

/// Scales a paper-sized user population down by ScaleDivisor().
inline std::size_t ScaledUsers(std::size_t paper_users) {
  const std::size_t scaled = paper_users / ScaleDivisor();
  return scaled == 0 ? 1 : scaled;
}

/// Prints the standard bench header with the effective scale settings.
inline void PrintHeader(const char* title, const char* paper_setup) {
  std::printf("=== %s ===\n", title);
  std::printf("paper setup : %s\n", paper_setup);
  std::printf("this run    : users / %zu, %zu repeats "
              "(HDLDP_BENCH_SCALE / HDLDP_BENCH_REPEATS)\n\n",
              ScaleDivisor(), Repeats());
}

/// Wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// \brief Machine-readable benchmark record, shared by every bench that
/// contributes to the BENCH_records CI artifact (bench_fig2 ->
/// BENCH_mean.json, bench_freq -> BENCH_freq.json, ...).
///
/// One top-level object of scalar metadata fields plus a "cells" array of
/// flat objects — build it as the bench runs, then WriteIfRequested()
/// writes it to the HDLDP_BENCH_JSON path (a silent no-op when the
/// variable is unset, so interactive runs pay nothing).
class JsonRecord {
 public:
  explicit JsonRecord(const std::string& benchmark) {
    Meta("benchmark", benchmark);
  }

  /// Adds a top-level metadata field.
  void Meta(const std::string& key, const std::string& value) {
    meta_.push_back(Quote(key) + ": " + Quote(value));
  }
  void Meta(const std::string& key, double value) {
    meta_.push_back(Quote(key) + ": " + Number(value));
  }
  void Meta(const std::string& key, std::size_t value) {
    meta_.push_back(Quote(key) + ": " + std::to_string(value));
  }

  /// Starts a new cell; subsequent Cell() calls populate it. A Cell()
  /// call with no open cell opens one, so the first cell's NewCell() is
  /// optional.
  void NewCell() { cells_.emplace_back(); }
  void Cell(const std::string& key, const std::string& value) {
    OpenCell().push_back(Quote(key) + ": " + Quote(value));
  }
  void Cell(const std::string& key, double value) {
    OpenCell().push_back(Quote(key) + ": " + Number(value));
  }
  void Cell(const std::string& key, std::size_t value) {
    OpenCell().push_back(Quote(key) + ": " + std::to_string(value));
  }

  /// Writes the record to $HDLDP_BENCH_JSON if set. Returns whether a
  /// file was written (failures print to stderr and return false).
  bool WriteIfRequested() const {
    const char* path = std::getenv("HDLDP_BENCH_JSON");
    if (path == nullptr) return false;
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path);
      return false;
    }
    std::fprintf(f, "{\n");
    for (const std::string& field : meta_) {
      std::fprintf(f, "  %s,\n", field.c_str());
    }
    std::fprintf(f, "  \"cells\": [\n");
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      std::string row;
      for (std::size_t k = 0; k < cells_[i].size(); ++k) {
        row += (k == 0 ? "" : ", ") + cells_[i][k];
      }
      std::fprintf(f, "    {%s}%s\n", row.c_str(),
                   i + 1 < cells_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    return true;
  }

 private:
  static std::string Quote(const std::string& s) {
    std::string quoted = "\"";
    for (const char c : s) {
      if (c == '"' || c == '\\') quoted += '\\';
      quoted += c;
    }
    return quoted + "\"";
  }
  static std::string Number(double v) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.6g", v);
    return buffer;
  }
  std::vector<std::string>& OpenCell() {
    if (cells_.empty()) cells_.emplace_back();
    return cells_.back();
  }

  std::vector<std::string> meta_;
  std::vector<std::vector<std::string>> cells_;
};

}  // namespace bench
}  // namespace hdldp

#endif  // HDLDP_BENCH_BENCH_UTIL_H_
