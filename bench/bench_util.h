// Shared helpers for the paper-reproduction benchmark binaries.
//
// Every bench runs with no arguments at a reduced default scale so the
// whole suite finishes in minutes on a laptop; two environment variables
// restore paper scale:
//
//   HDLDP_BENCH_SCALE    divisor applied to user counts (default 10;
//                        set 1 for the paper's full populations)
//   HDLDP_BENCH_REPEATS  repetitions averaged per point (default 3;
//                        the paper uses 100)
//   HDLDP_BENCH_THREADS  max concurrent trials in the trial-parallel
//                        harness (default 0 = one per hardware thread;
//                        results are identical for every value)
//
// Output is aligned-text tables mirroring the paper's rows/series, so a
// run can be diffed against EXPERIMENTS.md.

#ifndef HDLDP_BENCH_BENCH_UTIL_H_
#define HDLDP_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace hdldp {
namespace bench {

/// Reads a positive integer environment variable with a default.
inline std::size_t EnvSize(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  const long parsed = std::atol(raw);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

/// User-count divisor (1 = paper scale).
inline std::size_t ScaleDivisor() { return EnvSize("HDLDP_BENCH_SCALE", 10); }

/// Repetitions per configuration.
inline std::size_t Repeats() { return EnvSize("HDLDP_BENCH_REPEATS", 3); }

/// Max concurrent trials (0 = one per hardware thread). Deterministic:
/// trial results never depend on this value, only wall-clock time does.
inline std::size_t MaxWorkers() {
  const char* raw = std::getenv("HDLDP_BENCH_THREADS");
  if (raw == nullptr) return 0;
  const long parsed = std::atol(raw);
  return parsed >= 0 ? static_cast<std::size_t>(parsed) : 0;
}

/// Scales a paper-sized user population down by ScaleDivisor().
inline std::size_t ScaledUsers(std::size_t paper_users) {
  const std::size_t scaled = paper_users / ScaleDivisor();
  return scaled == 0 ? 1 : scaled;
}

/// Prints the standard bench header with the effective scale settings.
inline void PrintHeader(const char* title, const char* paper_setup) {
  std::printf("=== %s ===\n", title);
  std::printf("paper setup : %s\n", paper_setup);
  std::printf("this run    : users / %zu, %zu repeats "
              "(HDLDP_BENCH_SCALE / HDLDP_BENCH_REPEATS)\n\n",
              ScaleDivisor(), Repeats());
}

/// Wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace bench
}  // namespace hdldp

#endif  // HDLDP_BENCH_BENCH_UTIL_H_
