// Extension bench: EM-debiased square-wave mean estimation vs. the
// paper's naive aggregation.
//
// The paper's framework shows (Section IV-C) that naive averaging of
// square-wave reports carries a bias delta(t) — visible as the offset
// Gaussian in its Figure 3(b) — and its evaluation inherits that bias.
// Li et al.'s EM post-processing estimates the value distribution first
// and reads the mean off it. This bench quantifies the difference on one
// dimension across budgets, and reports the framework's bias prediction
// alongside.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/math.h"
#include "common/rng.h"
#include "common/stats.h"
#include "framework/deviation_model.h"
#include "framework/value_distribution.h"
#include "mech/registry.h"
#include "protocol/em_distribution.h"

int main() {
  hdldp::bench::PrintHeader(
      "Extension: EM-debiased Square wave vs. naive aggregation",
      "one dimension, n=100,000 reports, skewed values on [0, 1]");
  const std::size_t reports_n = hdldp::bench::ScaledUsers(100000);
  const auto mechanism = hdldp::mech::MakeMechanism("square_wave").value();

  // Skewed original values (mean far from 1/2 so the bias shows).
  hdldp::Rng data_rng(0xE3);
  std::vector<double> originals(reports_n);
  for (double& t : originals) {
    t = hdldp::Clamp(0.15 + 0.1 * std::abs(data_rng.Gaussian()), 0.0, 1.0);
  }
  const double true_mean = hdldp::Mean(originals);
  const auto values =
      hdldp::framework::ValueDistribution::FromSamples(originals, 32).value();

  std::printf("true mean = %.4f\n\n", true_mean);
  std::printf("%8s %12s %12s %12s %14s\n", "eps", "naive-err", "EM-err",
              "pred-bias", "EM-iterations");
  for (const double eps : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    hdldp::Rng rng(0xE30 + static_cast<std::uint64_t>(eps * 100));
    std::vector<double> perturbed(reports_n);
    for (std::size_t i = 0; i < reports_n; ++i) {
      perturbed[i] = mechanism->Perturb(originals[i], eps, &rng);
    }
    const double naive = hdldp::Mean(perturbed);
    const auto em =
        hdldp::protocol::EstimateDistributionEm(*mechanism, eps, perturbed)
            .value();
    const auto model =
        hdldp::framework::ModelDeviation(*mechanism, eps, values,
                                         static_cast<double>(reports_n),
                                         {0.0, 1.0})
            .value();
    std::printf("%8g %12.5f %12.5f %12.5f %14d\n", eps,
                std::abs(naive - true_mean),
                std::abs(em.EstimatedMean() - true_mean),
                model.deviation.mean, em.iterations);
  }
  std::printf("\nThe naive error tracks the framework's predicted bias "
              "almost exactly;\nEM removes the bulk of it, at pure "
              "server-side cost.\n");
  return 0;
}
