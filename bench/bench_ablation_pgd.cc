// Ablation A3: the one-off HDR4ME solvers (Eqs. 34/42) vs. the iterative
// proximal-gradient machinery they were derived from.
//
// Verifies (i) the solutions agree to floating-point noise and (ii) the
// one-off solvers are orders of magnitude cheaper — the practical reason
// the paper's protocol adds no computational burden to the collector.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "hdr4me/pgd.h"
#include "hdr4me/recalibrate.h"

namespace {

double MaxAbsDiff(const std::vector<double>& a, const std::vector<double>& b) {
  double worst = 0.0;
  for (std::size_t j = 0; j < a.size(); ++j) {
    worst = std::max(worst, std::abs(a[j] - b[j]));
  }
  return worst;
}

}  // namespace

int main() {
  using hdldp::hdr4me::MinimizeProximal;
  using hdldp::hdr4me::PgdOptions;
  using hdldp::hdr4me::RecalibrateL1;
  using hdldp::hdr4me::RecalibrateL2;
  using hdldp::hdr4me::Regularizer;

  std::printf("=== Ablation A3: one-off solver vs. PGD vs. FISTA ===\n\n");
  std::printf("%10s %-4s %12s %12s %12s %10s %10s %12s\n", "dims", "reg",
              "t(one-off)", "t(pgd)", "t(fista)", "it(pgd)", "it(fista)",
              "max|diff|");

  for (const std::size_t d : {1000u, 100000u}) {
    hdldp::Rng rng(0xAB3A + d);
    std::vector<double> theta_hat(d);
    std::vector<double> lambda(d);
    for (std::size_t j = 0; j < d; ++j) {
      theta_hat[j] = rng.Uniform(-5.0, 5.0);
      lambda[j] = rng.Uniform(0.0, 3.0);
    }
    for (const Regularizer reg : {Regularizer::kL1, Regularizer::kL2}) {
      hdldp::bench::Stopwatch w1;
      const auto closed = (reg == Regularizer::kL1
                               ? RecalibrateL1(theta_hat, lambda)
                               : RecalibrateL2(theta_hat, lambda))
                              .value();
      const double t_closed = w1.Seconds();

      PgdOptions plain;
      plain.step_size = 0.5;
      plain.tolerance = 1e-12;
      hdldp::bench::Stopwatch w2;
      const auto pgd = MinimizeProximal(theta_hat, lambda, reg, plain).value();
      const double t_pgd = w2.Seconds();

      PgdOptions fista = plain;
      fista.accelerate = true;
      hdldp::bench::Stopwatch w3;
      const auto acc = MinimizeProximal(theta_hat, lambda, reg, fista).value();
      const double t_fista = w3.Seconds();

      const double diff = std::max(MaxAbsDiff(closed, pgd.solution),
                                   MaxAbsDiff(closed, acc.solution));
      std::printf("%10zu %-4s %11.2fus %11.2fus %11.2fus %10d %10d %12.3g\n",
                  d, reg == Regularizer::kL1 ? "L1" : "L2", t_closed * 1e6,
                  t_pgd * 1e6, t_fista * 1e6, pgd.iterations, acc.iterations,
                  diff);
    }
  }
  std::printf("\nThe one-off solvers match the iterative optimum and run in "
              "a single pass,\nconfirming Eq. 34 / Eq. 42 as exact "
              "minimizers of Eq. 23.\n");
  return 0;
}
