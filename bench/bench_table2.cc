// Reproduces Table II: probabilities that the one-dimensional deviation
// stays within a supremum xi, for Piecewise vs Square wave under the
// Section IV-C case study (values {0.1..1.0} w.p. 10% each, eps/m = 0.001,
// r = 10,000), plus two appendices:
//   (a) the case-study Gaussian parameters behind the probabilities
//       (paper Eqs. 15/19),
//   (b) the Section IV-D Berry-Esseen worked example (E9).
//
// Pure closed-form evaluation: no experiment is run, which is the point
// of the paper's framework.

#include <cstdio>
#include <vector>

#include "common/math.h"
#include "framework/benchmark.h"
#include "framework/berry_esseen.h"
#include "mech/registry.h"

namespace {

hdldp::framework::ValueDistribution CaseStudyValues() {
  std::vector<double> values;
  std::vector<double> probs;
  for (int k = 1; k <= 10; ++k) {
    values.push_back(0.1 * k);
    probs.push_back(0.1);
  }
  return hdldp::framework::ValueDistribution::Create(values, probs).value();
}

}  // namespace

int main() {
  using hdldp::framework::BenchmarkMechanisms;
  using hdldp::framework::BenchmarkSpec;

  std::printf("=== Table II: probabilities for the supremum to hold in one "
              "dimension ===\n");
  std::printf("case study  : v=10 values {0.1..1.0}, p=10%% each, "
              "eps/m=0.001, r=10,000\n\n");

  std::vector<BenchmarkSpec> specs(2);
  specs[0].mechanism = hdldp::mech::MakeMechanism("piecewise").value();
  specs[0].values = CaseStudyValues();
  specs[0].data_domain = {-1.0, 1.0};  // Piecewise native domain.
  specs[1].mechanism = hdldp::mech::MakeMechanism("square_wave").value();
  specs[1].values = CaseStudyValues();
  specs[1].data_domain = {0.0, 1.0};  // Square wave native domain.

  const std::vector<double> xis = {0.001, 0.01, 0.05, 0.1};
  const auto table = BenchmarkMechanisms(specs, 0.001, 10000.0, xis).value();

  std::printf("%-12s", "xi");
  for (const double xi : xis) std::printf("%12g", xi);
  std::printf("\n");
  for (const auto& row : table) {
    std::printf("%-12s", row.name.c_str());
    for (const double p : row.probabilities) std::printf("%12.3g", p);
    std::printf("\n");
  }
  std::printf("%-12s", "paper:PM");
  std::printf("%12s%12s%12s%12s\n", "3.46e-05", "3.46e-04", "0.002", "0.004");
  std::printf("%-12s", "paper:SW");
  std::printf("%12s%12s%12s%12s\n", "2.12e-16", "2.62e-11", "0.644", "1.000");

  const auto winners = hdldp::framework::WinnersPerSupremum(table);
  std::printf("\nwinner per xi:");
  for (std::size_t k = 0; k < winners.size(); ++k) {
    std::printf("  xi=%g -> %s", xis[k], table[winners[k]].name.c_str());
  }
  std::printf("\n");

  std::printf("\n--- appendix (a): case-study Gaussian parameters ---\n");
  std::printf("%-12s %14s %14s   (paper: PM sigma^2=533.210; "
              "SW delta=-0.049, sigma^2=3.365e-5)\n",
              "mechanism", "delta_j", "sigma_j^2");
  for (const auto& row : table) {
    std::printf("%-12s %14.6g %14.6g\n", row.name.c_str(),
                row.model.deviation.mean,
                hdldp::Sq(row.model.deviation.stddev));
  }

  std::printf("\n--- appendix (b): Theorem 2 worked example (Laplace, "
              "r=1,000) ---\n");
  const auto laplace = hdldp::mech::MakeMechanism("laplace").value();
  const auto model =
      hdldp::framework::ModelDeviation(
          *laplace, 1.0, hdldp::framework::ValueDistribution::Point(0.0),
          1000.0)
          .value();
  const double exact = hdldp::framework::BerryEsseenBound(model).value();
  // The paper evaluates the bound with rho = 3 lambda^3 (Eq. 21 slip; the
  // exact Laplace third absolute moment is 6 lambda^3).
  const double paper_rho_bound =
      hdldp::framework::BerryEsseenBound(model.per_report_third_abs / 2.0,
                                         model.per_report_variance, 1000.0)
          .value();
  std::printf("bound with exact rho = 6 lambda^3 : %.4f  (2.69%% expected)\n",
              exact);
  std::printf("bound with paper rho = 3 lambda^3 : %.4f  (paper reports "
              "~1.57%%)\n",
              paper_rho_bound);
  return 0;
}
