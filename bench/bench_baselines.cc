// Extension bench: the Fig. 4 experiment widened to every mechanism in
// the registry, demonstrating the framework's claimed generality — the
// paper evaluates three mechanisms; the library benchmarks seven with the
// same machinery, including model-calibrated aggregation (the Section
// IV-B "Calibration" step) for the biased Square wave.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "data/generators.h"
#include "framework/experiment_runner.h"
#include "framework/deviation_model.h"
#include "framework/value_distribution.h"
#include "hdr4me/recalibrate.h"
#include "mech/registry.h"
#include "protocol/aggregator.h"
#include "protocol/client.h"
#include "protocol/metrics.h"
#include "protocol/pipeline.h"

namespace {

using hdldp::framework::GaussianDeviation;
using hdldp::framework::ModelDeviation;
using hdldp::framework::ValueDistribution;

constexpr std::size_t kPaperUsers = 100000;
constexpr std::size_t kDims = 200;

// Runs one calibrated pipeline: client reports -> aggregator with the
// framework's expected-bias correction.
double CalibratedMse(const hdldp::data::Dataset& data,
                     hdldp::mech::MechanismPtr mechanism, double epsilon,
                     std::span<const ValueDistribution> dists,
                     std::uint64_t seed) {
  hdldp::protocol::ClientOptions copts;
  copts.total_epsilon = epsilon;
  const auto client =
      hdldp::protocol::Client::Create(mechanism, data.num_dims(), copts)
          .value();
  auto aggregator = hdldp::protocol::MeanAggregator::Create(
                        data.num_dims(), client.domain_map())
                        .value();
  auto bias = hdldp::framework::ExpectedNativeBias(
                  *mechanism, client.PerDimensionEpsilon(), dists)
                  .value();
  const hdldp::Status bias_status =
      aggregator.SetBiasCorrection(std::move(bias));
  if (!bias_status.ok()) std::abort();
  hdldp::Rng rng(seed);
  for (std::size_t i = 0; i < data.num_users(); ++i) {
    client.ReportTo(data.Row(i), &rng, [&](std::uint32_t dim, double value) {
      aggregator.Consume(dim, value);
    });
  }
  return hdldp::protocol::MeanSquaredError(aggregator.EstimatedMean(),
                                           data.TrueMean())
      .value();
}

}  // namespace

int main() {
  hdldp::bench::PrintHeader(
      "Extension: all seven mechanisms under the Fig. 4 protocol",
      "Gaussian dataset n=100,000, d=200, m=d, eps in {0.4, 1.6}");
  const std::size_t users = hdldp::bench::ScaledUsers(kPaperUsers);
  const std::size_t repeats = hdldp::bench::Repeats();

  hdldp::Rng data_rng(0xBA5E);
  hdldp::data::GaussianSpec spec;
  spec.num_users = users;
  spec.num_dims = kDims;
  const auto data = hdldp::data::GenerateGaussian(spec, &data_rng).value();
  const auto true_mean = data.TrueMean();

  // Per-dimension value distributions, shared by all mechanisms.
  std::vector<ValueDistribution> dists;
  std::vector<double> column(std::min<std::size_t>(users, 2000));
  for (std::size_t j = 0; j < kDims; ++j) {
    for (std::size_t i = 0; i < column.size(); ++i) column[i] = data.At(i, j);
    dists.push_back(ValueDistribution::FromSamples(column, 16).value());
  }

  for (const double eps : {0.4, 1.6}) {
    std::printf("--- eps = %g ---\n", eps);
    std::printf("%-12s %14s %14s %14s %14s\n", "mechanism", "naive-MSE",
                "calibrated", "L1-MSE", "predicted");
    for (const auto name : hdldp::mech::RegisteredMechanismNames()) {
      const auto mechanism = hdldp::mech::MakeMechanism(name).value();
      const double eps_per_dim = eps / static_cast<double>(kDims);
      std::vector<GaussianDeviation> deviations;
      for (std::size_t j = 0; j < kDims; ++j) {
        deviations.push_back(
            ModelDeviation(*mechanism, eps_per_dim, dists[j],
                           static_cast<double>(users))
                .value()
                .deviation);
      }
      const double predicted =
          hdldp::framework::PredictedMse(deviations).value();
      double naive = 0.0;
      double calibrated = 0.0;
      double l1 = 0.0;
      // Trial-parallel repeats, reduced in trial order.
      struct RepMse {
        double naive, calibrated, l1;
      };
      hdldp::framework::ExperimentRunnerOptions runner_options;
      runner_options.seed = 0xBA5E00 + name.size() +
                            static_cast<std::uint64_t>(eps * 1000.0);
      runner_options.max_workers = hdldp::bench::MaxWorkers();
      hdldp::framework::ExperimentRunner runner(runner_options);
      runner.ForEachTrial(
          repeats,
          [&](const hdldp::framework::TrialContext& ctx) {
            hdldp::protocol::PipelineOptions opts;
            opts.total_epsilon = eps;
            opts.seed = ctx.seed;
            const auto run =
                hdldp::protocol::RunMeanEstimation(data, mechanism, opts)
                    .value();
            hdldp::hdr4me::Hdr4meOptions h;
            h.regularizer = hdldp::hdr4me::Regularizer::kL1;
            return RepMse{
                run.mse,
                CalibratedMse(data, mechanism, eps, dists, ctx.seed + 1),
                hdldp::protocol::MeanSquaredError(
                    hdldp::hdr4me::Recalibrate(run.estimated_mean,
                                               deviations, h)
                        .value()
                        .enhanced_mean,
                    true_mean)
                    .value()};
          },
          [&](const RepMse& rep) {
            naive += rep.naive;
            calibrated += rep.calibrated;
            l1 += rep.l1;
          });
      const double denom = static_cast<double>(repeats);
      std::printf("%-12s %14.5g %14.5g %14.5g %14.5g\n",
                  std::string(name).c_str(), naive / denom,
                  calibrated / denom, l1 / denom, predicted);
    }
    std::printf("\n");
  }
  std::printf("'calibrated' applies the framework's expected-bias "
              "correction (Section IV-B\nstep 2): a no-op for the unbiased "
              "mechanisms, a real repair for Square wave.\n");
  return 0;
}
