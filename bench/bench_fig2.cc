// Reproduces Figure 2: the analytical (CLT) pdf of the deviation
// theta-hat_j - theta-bar_j against the empirical pdf measured from
// repeated experiments, on the Uniform dataset.
//
// Paper setup: n = 200,000 users, d = 5,000 dimensions, m = 50 reported
// dimensions, eps = 1, 1,000 trials, tracking the first dimension, for
// Laplace / Piecewise / Square wave.
//
// Every user includes the tracked dimension with probability m/d, so only
// that dimension is simulated (protocol::RunSingleDimension); the trial
// count is scaled by HDLDP_BENCH_REPEATS * 100 (default 300 trials).
// Trials run in parallel on framework::ExperimentRunner: each trial draws
// from its own (seed, trial)-derived stream and deviations fold into the
// histogram in trial order, so output is identical for any
// HDLDP_BENCH_THREADS.

#include <algorithm>
#include <bit>
#include <cstdio>
#include <limits>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "data/generators.h"
#include "framework/deviation_model.h"
#include "framework/experiment_runner.h"
#include "framework/value_distribution.h"
#include "mech/registry.h"
#include "protocol/pipeline.h"
#include "protocol/wire.h"

namespace {

constexpr std::size_t kPaperUsers = 200000;
constexpr std::size_t kDims = 5000;
constexpr std::size_t kReportDims = 50;
constexpr double kEpsilon = 1.0;

// Dimensionality of the end-to-end mean-pipeline wall-time cells below:
// small enough that the materialized dataset stays modest, large enough
// that m << d keeps the sampled engine path honest.
constexpr std::size_t kPipelineDims = 500;

void RunMechanism(const std::string& name, std::size_t users,
                  std::size_t trials, hdldp::bench::JsonRecord* record) {
  using hdldp::framework::ModelDeviation;
  using hdldp::framework::ValueDistribution;

  const auto mechanism = hdldp::mech::MakeMechanism(name).value();
  const double eps_per_dim = kEpsilon / static_cast<double>(kReportDims);
  const double inclusion =
      static_cast<double>(kReportDims) / static_cast<double>(kDims);

  // The tracked dimension of the Uniform dataset.
  hdldp::Rng data_rng(0xF16'2000 + name.size());
  std::vector<double> values(users);
  for (double& v : values) v = data_rng.Uniform(-1.0, 1.0);
  const double true_mean = hdldp::Mean(values);

  // Framework prediction (Lemma 2 / Lemma 3 + Theorem 1 marginal).
  const auto value_dist = ValueDistribution::FromSamples(values, 64).value();
  const double expected_reports = static_cast<double>(users) * inclusion;
  const auto model =
      ModelDeviation(*mechanism, eps_per_dim, value_dist, expected_reports)
          .value();

  // Empirical deviations across trials, trial-parallel and reduced in
  // trial order.
  const double span = 4.0 * model.deviation.stddev;
  const double lo = model.deviation.mean - span;
  const double hi = model.deviation.mean + span;
  auto histogram = hdldp::Histogram::Create(lo, hi, 25).value();
  const hdldp::bench::Stopwatch cell_watch;
  hdldp::framework::ExperimentRunnerOptions runner_options;
  runner_options.seed = 0xF16'2F00 + name.size();
  runner_options.max_workers = hdldp::bench::MaxWorkers();
  hdldp::framework::ExperimentRunner runner(runner_options);
  runner.ForEachTrial(
      trials,
      [&](const hdldp::framework::TrialContext& ctx) {
        hdldp::Rng rng(ctx.seed);
        const auto run = hdldp::protocol::RunSingleDimension(
                             values, *mechanism, eps_per_dim, inclusion,
                             {-1.0, 1.0}, hdldp::SeedScheme::kV1Scalar, &rng)
                             .value();
        return run.estimated_mean - true_mean;
      },
      [&](double deviation) { histogram.Add(deviation); });

  record->NewCell();
  record->Cell("kind", std::string("fig2_trials"));
  record->Cell("mechanism", name);
  // Stream contract of the per-trial draws (common/rng_lanes.h): a lane
  // variant of the fig-2 harness would be a new scheme, not a silent
  // re-layout of this one.
  record->Cell("scheme", std::string("v1"));
  record->Cell("trials", trials);
  record->Cell("seconds", cell_watch.Seconds());

  std::printf("--- %s (CLT model: delta=%.4g, sigma=%.4g) ---\n",
              name.c_str(), model.deviation.mean, model.deviation.stddev);
  std::printf("%14s %14s %14s\n", "deviation", "pdf(CLT)", "pdf(experiment)");
  for (std::size_t b = 0; b < histogram.num_bins(); ++b) {
    const double x = histogram.BinCenter(b);
    std::printf("%14.5g %14.5g %14.5g\n", x, model.deviation.Pdf(x),
                histogram.DensityAt(b));
  }
  std::printf("\n");
}

// Wire bytes of a representative version-1 numeric report carrying
// `entries` of `dims` dimensions (evenly spaced, the expectation of
// sampling without replacement), for the bytes/user columns.
std::size_t NumericReportBytes(std::size_t dims, std::size_t entries) {
  hdldp::protocol::UserReport report;
  for (std::size_t k = 0; k < entries; ++k) {
    report.entries.push_back(
        {.dimension = static_cast<std::uint32_t>(k * dims / entries),
         .value = 0.5});
  }
  return hdldp::protocol::EncodeReport(report).value().size();
}

// Wire bytes of a worst-case Hadamard 1-bit report at (dims, entries).
std::size_t Hadamard1ReportBytes(std::size_t dims, std::size_t entries) {
  const std::uint32_t padded =
      static_cast<std::uint32_t>(std::bit_ceil(entries));
  const hdldp::protocol::Hadamard1Payload payload = {
      .num_dims = static_cast<std::uint32_t>(dims),
      .report_dims = static_cast<std::uint32_t>(entries),
      .sample_seed = 0xffffffffu,
      .index = padded - 1,
      .positive = true};
  return hdldp::protocol::EncodeHadamard1Payload(payload).value().size();
}

// End-to-end RunMeanEstimation wall time per mechanism (the engine's
// lane-parallel chunk pipeline): the record these cells feed is what
// tracks the mean-path perf trajectory across PRs, next to bench_freq's.
// Both engine paths are recorded — the dense m == d driver (where the
// lane speedup lives) and the sampled m < d driver, the latter under
// BOTH the legacy kV2Lanes per-user layout and the kV3Batched
// cross-user layout, single-core so the before/after cells are
// comparable across runners — so a regression of either path or either
// scheme is visible in BENCH_records.
void RunMeanPipeline(std::size_t users, hdldp::bench::JsonRecord* record) {
  hdldp::Rng data_rng(0xF16'2D00);
  const auto dataset =
      hdldp::data::GenerateUniform(
          {.num_users = users, .num_dims = kPipelineDims}, &data_rng)
          .value();
  // Fill the dataset's TrueMean memo outside the timed cells so the
  // first cell is not charged for the shared one-time pass.
  (void)dataset.TrueMean();
  std::printf("--- end-to-end mean pipeline (n=%zu, d=%zu) ---\n", users,
              kPipelineDims);
  std::printf("%-12s %6s %7s %12s %14s\n", "mechanism", "m", "scheme",
              "wall (s)", "naive-MSE");
  for (const auto name :
       {"laplace", "piecewise", "square_wave", "staircase", "scdf"}) {
    const auto mechanism = hdldp::mech::MakeMechanism(name).value();
    double sampled_seconds[2] = {0.0, 0.0};  // v2, v3.
    for (const std::size_t m : {kReportDims, std::size_t{0}}) {
      const bool sampled = m != 0;
      // Sampled cells compare both layouts; dense cells record the
      // default only (v3 dense is laid out exactly as v2).
      std::vector<hdldp::SeedScheme> schemes = {hdldp::SeedScheme::kV3Batched};
      if (sampled) {
        schemes.insert(schemes.begin(), hdldp::SeedScheme::kV2Lanes);
      }
      for (std::size_t s = 0; s < schemes.size(); ++s) {
        hdldp::protocol::PipelineOptions opts;
        opts.total_epsilon = kEpsilon;
        opts.report_dims = m;
        opts.seed = 0xF16'2;
        opts.seed_scheme = schemes[s];
        // Dense cells keep the multi-worker trajectory; the sampled
        // scheme-comparison cells run single-core by design.
        opts.num_threads = sampled ? 1 : hdldp::bench::MaxWorkers();
        // Best-of-repeats: single runs of tens of milliseconds are too
        // noisy on shared runners for before/after cells.
        const std::size_t timing_reps =
            std::max<std::size_t>(hdldp::bench::Repeats(), 3);
        double seconds = std::numeric_limits<double>::infinity();
        hdldp::protocol::MeanEstimationResult run;
        for (std::size_t r = 0; r < timing_reps; ++r) {
          const hdldp::bench::Stopwatch watch;
          run = hdldp::protocol::RunMeanEstimation(dataset, mechanism, opts)
                    .value();
          seconds = std::min(seconds, watch.Seconds());
        }
        if (sampled) sampled_seconds[s] = seconds;
        const std::size_t effective_m = m == 0 ? kPipelineDims : m;
        const char* scheme_name =
            schemes[s] == hdldp::SeedScheme::kV2Lanes ? "v2" : "v3";
        std::printf("%-12s %6zu %7s %12.3f %14.5g\n", name, effective_m,
                    scheme_name, seconds, run.mse);
        record->NewCell();
        record->Cell("kind", std::string("mean_pipeline"));
        record->Cell("mechanism", std::string(name));
        record->Cell("encoding", std::string(sampled ? "sampled" : "dense"));
        record->Cell("report_dims", effective_m);
        record->Cell("scheme", std::string(scheme_name));
        record->Cell("sampled", static_cast<std::size_t>(sampled ? 1 : 0));
        record->Cell("seconds", seconds);
        record->Cell("mse", run.mse);
        record->Cell("bytes_per_user",
                     NumericReportBytes(kPipelineDims, effective_m));
      }
    }
    if (sampled_seconds[1] > 0.0) {
      std::printf("%-12s sampled v2/v3 speedup: %.2fx\n", name,
                  sampled_seconds[0] / sampled_seconds[1]);
    }
  }

  // The Hadamard 1-bit encoding: one sign bit per user instead of m
  // perturbed doubles, so bytes/user is what this cell is really about —
  // the MSE column shows the error cost of the compression at the same
  // (eps, n, d, m). No mechanism is involved (randomized response on a
  // sampled Hadamard coefficient).
  {
    hdldp::protocol::PipelineOptions opts;
    opts.total_epsilon = kEpsilon;
    opts.report_dims = kReportDims;
    opts.seed = 0xF16'2;
    opts.num_threads = 1;
    opts.encoding = hdldp::protocol::ReportEncoding::kHadamard1;
    const std::size_t timing_reps =
        std::max<std::size_t>(hdldp::bench::Repeats(), 3);
    double seconds = std::numeric_limits<double>::infinity();
    hdldp::protocol::MeanEstimationResult run;
    for (std::size_t r = 0; r < timing_reps; ++r) {
      const hdldp::bench::Stopwatch watch;
      run = hdldp::protocol::RunMeanEstimation(dataset, nullptr, opts).value();
      seconds = std::min(seconds, watch.Seconds());
    }
    const std::size_t bytes = Hadamard1ReportBytes(kPipelineDims, kReportDims);
    std::printf("%-12s %6zu %7s %12.3f %14.5g  (%zu bytes/user)\n",
                "hadamard1", kReportDims, "v1", seconds, run.mse, bytes);
    record->NewCell();
    record->Cell("kind", std::string("mean_pipeline"));
    record->Cell("mechanism", std::string("none"));
    record->Cell("encoding", std::string("hadamard1"));
    record->Cell("report_dims", kReportDims);
    record->Cell("scheme", std::string("v1"));
    record->Cell("sampled", std::size_t{1});
    record->Cell("seconds", seconds);
    record->Cell("mse", run.mse);
    record->Cell("bytes_per_user", bytes);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  hdldp::bench::PrintHeader(
      "Figure 2: analysis vs. experiment on Uniform (d=5,000)",
      "n=200,000, d=5,000, m=50, eps=1, 1,000 trials, first dimension");
  const std::size_t users = hdldp::bench::ScaledUsers(kPaperUsers);
  const std::size_t trials = hdldp::bench::Repeats() * 100;
  std::printf("effective   : n=%zu, trials=%zu\n\n", users, trials);
  hdldp::bench::JsonRecord record("bench_fig2");
  record.Meta("users", users);
  record.Meta("trials", trials);
  const hdldp::bench::Stopwatch watch;
  for (const auto name : {"laplace", "piecewise", "square_wave"}) {
    RunMechanism(name, users, trials, &record);
  }
  RunMeanPipeline(users, &record);
  const double total_seconds = watch.Seconds();
  std::printf("end-to-end wall time: %.3f s\n", total_seconds);
  record.Meta("wall_seconds", total_seconds);
  // Machine-readable record: BENCH_mean.json in the CI BENCH_records
  // artifact (same HDLDP_BENCH_JSON convention as bench_freq).
  record.WriteIfRequested();
  return 0;
}
