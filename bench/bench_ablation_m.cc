// Ablation A5: how many dimensions should a user report?
//
// Section III-B fixes the protocol shape — report m of d dimensions at
// eps/m each — but m itself is a free parameter. The framework predicts
// the per-dimension deviation variance in closed form
// (sigma^2 = E[Var(t*; eps/m)] / (n m / d)), so the sweep doubles as a
// live check of the analytical model against measured MSE.
//
// For Laplace, Var ~ 8 m^2 / eps^2 and r = n m / d give
// sigma^2 ~ 8 m d / (n eps^2): *smaller m is strictly better*. Bounded
// mechanisms behave the same way at small eps. This reproduces the
// reasoning behind the paper's m = d stress setting being the hardest
// regime.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/math.h"
#include "common/rng.h"
#include "data/generators.h"
#include "framework/experiment_runner.h"
#include "framework/deviation_model.h"
#include "framework/value_distribution.h"
#include "mech/registry.h"
#include "protocol/pipeline.h"

int main() {
  using hdldp::framework::ModelDeviation;
  using hdldp::framework::ValueDistribution;

  hdldp::bench::PrintHeader(
      "Ablation A5: reported-dimension count m at fixed total budget",
      "Uniform dataset n=100,000, d=256, eps=1");
  const std::size_t users = hdldp::bench::ScaledUsers(100000);
  const std::size_t repeats = hdldp::bench::Repeats();
  constexpr std::size_t kDims = 256;
  constexpr double kEps = 1.0;

  hdldp::Rng data_rng(0xAB5A);
  const auto data =
      hdldp::data::GenerateUniform({.num_users = users, .num_dims = kDims},
                                   &data_rng)
          .value();
  // Fit the value-distribution sample to the scaled population: at
  // HDLDP_BENCH_SCALE >= 100 the old fixed 2000-row read walked past the
  // dataset (the pre-PR 3 abort).
  std::vector<double> column(std::min<std::size_t>(2000, users));
  for (std::size_t i = 0; i < column.size(); ++i) column[i] = data.At(i, 0);
  const auto values = ValueDistribution::FromSamples(column, 32).value();

  for (const auto mech_name : {"laplace", "piecewise", "square_wave"}) {
    const auto mechanism = hdldp::mech::MakeMechanism(mech_name).value();
    std::printf("--- %s (n=%zu, d=%zu, eps=%g) ---\n", mech_name, users,
                kDims, kEps);
    std::printf("%8s %16s %16s\n", "m", "predicted-MSE", "measured-MSE");
    for (const std::size_t m : {1u, 4u, 16u, 64u, 256u}) {
      const double eps_per_dim = kEps / static_cast<double>(m);
      const double reports = static_cast<double>(users * m) / kDims;
      if (!(reports >= 1.0)) {
        // Extreme downscale: under one expected report per dimension is
        // outside the Lemma 2/3 asymptotic regime (and ModelDeviation
        // rejects r <= 0); skip the row instead of aborting the sweep.
        std::printf("%8zu %16s %16s   (only %.3g expected reports/dim at "
                    "this scale)\n",
                    m, "n/a", "n/a", reports);
        continue;
      }
      const auto model =
          ModelDeviation(*mechanism, eps_per_dim, values, reports).value();
      const double predicted = hdldp::Sq(model.deviation.mean) +
                               hdldp::Sq(model.deviation.stddev);
      double measured = 0.0;
      // Trial-parallel repeats, reduced in trial order.
      hdldp::framework::ExperimentRunnerOptions runner_options;
      runner_options.seed = 0xAB5A00 + m;
      runner_options.max_workers = hdldp::bench::MaxWorkers();
      hdldp::framework::ExperimentRunner runner(runner_options);
      runner.ForEachTrial(
          repeats,
          [&](const hdldp::framework::TrialContext& ctx) {
            hdldp::protocol::PipelineOptions opts;
            opts.total_epsilon = kEps;
            opts.report_dims = m;
            opts.seed = ctx.seed;
            return hdldp::protocol::RunMeanEstimation(data, mechanism, opts)
                .value()
                .mse;
          },
          [&](double mse) { measured += mse; });
      std::printf("%8zu %16.5g %16.5g\n", m, predicted,
                  measured / static_cast<double>(repeats));
    }
    std::printf("\n");
  }
  std::printf("For the unbiased mechanisms, reporting fewer dimensions at a "
              "fatter\nper-dimension budget wins (Var grows like m^2 while "
              "reports only grow\nlike m). Square wave flips: its per-report "
              "variance saturates as eps/m\nshrinks while the bias cancels "
              "on symmetric data, so more reports win.\nIn both regimes the "
              "framework's closed-form prediction tracks the\nmeasured MSE "
              "without running any experiment.\n");
  return 0;
}
