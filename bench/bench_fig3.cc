// Reproduces Figure 3: analytical vs. empirical deviation pdfs for the
// Section IV-C case study (the discretized dataset behind Table II).
//
// Setup: values {0.1, ..., 1.0} with probability 10% each, d = 100
// dimensions, m = 100, total eps = 0.1 (eps/m = 0.001), r = 10,000
// reports; Piecewise evaluated on its native [-1, 1], Square wave on its
// native [0, 1]. The deviation histogram is collected over repeated
// perturbations of a fixed r-report dataset, exactly matching Lemma 3's
// setting.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/math.h"
#include "common/rng.h"
#include "common/stats.h"
#include "framework/deviation_model.h"
#include "framework/experiment_runner.h"
#include "framework/value_distribution.h"
#include "mech/plan.h"
#include "mech/registry.h"

namespace {

constexpr double kEpsPerDim = 0.001;
constexpr std::size_t kPaperReports = 10000;

hdldp::framework::ValueDistribution CaseStudyValues() {
  std::vector<double> values;
  std::vector<double> probs;
  for (int k = 1; k <= 10; ++k) {
    values.push_back(0.1 * k);
    probs.push_back(0.1);
  }
  return hdldp::framework::ValueDistribution::Create(values, probs).value();
}

void RunMechanism(const std::string& name,
                  const hdldp::mech::Interval& native_domain,
                  std::size_t reports, std::size_t trials) {
  const auto mechanism = hdldp::mech::MakeMechanism(name).value();
  const auto dist = CaseStudyValues();
  const auto model =
      hdldp::framework::ModelDeviation(*mechanism, kEpsPerDim, dist,
                                       static_cast<double>(reports),
                                       native_domain)
          .value();

  // A fixed dataset with exactly p_z * r copies of each value.
  std::vector<double> data;
  for (std::size_t z = 0; z < dist.support_size(); ++z) {
    const auto copies = static_cast<std::size_t>(
        dist.probabilities()[z] * static_cast<double>(reports) + 0.5);
    data.insert(data.end(), copies, dist.values()[z]);
  }
  const double true_mean = hdldp::Mean(data);

  const double span = 4.0 * model.deviation.stddev;
  auto histogram = hdldp::Histogram::Create(model.deviation.mean - span,
                                            model.deviation.mean + span, 25)
                       .value();
  // Trial-parallel: each trial perturbs the fixed dataset with its own
  // (seed, trial)-derived stream through a plan prepared once; the
  // histogram folds deviations in trial order.
  const hdldp::mech::SamplerPlan plan = mechanism->MakePlan(kEpsPerDim);
  hdldp::framework::ExperimentRunnerOptions runner_options;
  runner_options.seed = 0xF16'3000 + name.size();
  runner_options.max_workers = hdldp::bench::MaxWorkers();
  hdldp::framework::ExperimentRunner runner(runner_options);
  runner.ForEachTrial(
      trials,
      [&](const hdldp::framework::TrialContext& ctx) {
        hdldp::Rng rng(ctx.seed);
        hdldp::NeumaierSum sum;
        for (const double t : data) {
          sum.Add(hdldp::mech::PerturbOne(plan, t, &rng));
        }
        return sum.Total() / static_cast<double>(data.size()) - true_mean;
      },
      [&](double deviation) { histogram.Add(deviation); });

  std::printf("--- %s on native [%g, %g] "
              "(CLT model: delta=%.4g, sigma=%.4g) ---\n",
              name.c_str(), native_domain.lo, native_domain.hi,
              model.deviation.mean, model.deviation.stddev);
  std::printf("%14s %14s %14s\n", "deviation", "pdf(CLT)", "pdf(experiment)");
  for (std::size_t b = 0; b < histogram.num_bins(); ++b) {
    const double x = histogram.BinCenter(b);
    std::printf("%14.5g %14.5g %14.5g\n", x, model.deviation.Pdf(x),
                histogram.DensityAt(b));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  hdldp::bench::PrintHeader(
      "Figure 3: analysis vs. experiment in the Table II case study",
      "values {0.1..1.0} p=10%, eps/m=0.001, r=10,000, 1,000 trials");
  const std::size_t reports =
      hdldp::bench::ScaledUsers(kPaperReports * 10);  // Paper r = 10,000.
  const std::size_t trials = hdldp::bench::Repeats() * 100;
  std::printf("effective   : r=%zu, trials=%zu\n\n", reports, trials);
  RunMechanism("piecewise", {-1.0, 1.0}, reports, trials);
  RunMechanism("square_wave", {0.0, 1.0}, reports, trials);
  return 0;
}
