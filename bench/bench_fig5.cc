// Reproduces Figure 5: MSE vs. dimensionality on the COV-19 surrogate at
// eps = 0.8 for Laplace and Piecewise, under naive aggregation, HDR4ME-L1
// and HDR4ME-L2.
//
// Paper setup: d in {50, 100, 200, 400, 800, 1600}; dimensionalities
// beyond the source data's 750 columns are "made up" by randomly sampling
// columns with replacement, exactly as the paper describes.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "data/generators.h"
#include "framework/deviation_model.h"
#include "framework/experiment_runner.h"
#include "framework/value_distribution.h"
#include "hdr4me/recalibrate.h"
#include "mech/registry.h"
#include "protocol/metrics.h"
#include "protocol/pipeline.h"

namespace {

using hdldp::data::Dataset;
using hdldp::framework::GaussianDeviation;
using hdldp::framework::ModelDeviation;
using hdldp::framework::ValueDistribution;

constexpr double kEpsilon = 0.8;
constexpr std::size_t kPaperUsers = 150000;
constexpr std::size_t kSourceDims = 750;

std::vector<ValueDistribution> PerDimDistributions(const Dataset& data) {
  const std::size_t rows = std::min<std::size_t>(data.num_users(), 2000);
  std::vector<ValueDistribution> dists;
  dists.reserve(data.num_dims());
  std::vector<double> column(rows);
  for (std::size_t j = 0; j < data.num_dims(); ++j) {
    for (std::size_t i = 0; i < rows; ++i) column[i] = data.At(i, j);
    dists.push_back(ValueDistribution::FromSamples(column, 16).value());
  }
  return dists;
}

void RunMechanism(const std::string& mech_name, const Dataset& source,
                  std::size_t repeats) {
  const auto mechanism = hdldp::mech::MakeMechanism(mech_name).value();
  std::printf("--- %s on COV-19* (n=%zu, eps=%g, m=d) ---\n",
              mech_name.c_str(), source.num_users(), kEpsilon);
  // L2-MSE uses the practical estimate-referenced lambda*; L2p-MSE uses
  // the paper's literal reading (model-bias reference), whose weights blow
  // up for unbiased mechanisms and push the enhanced mean to ~0 — the
  // "MSE of L2 hardly changes" regime of Figs. 4(g)-(k)/5.
  std::printf("%10s %14s %14s %14s %14s\n", "dims", "naive-MSE", "L1-MSE",
              "L2-MSE", "L2p-MSE");
  hdldp::Rng resample_rng(0xF16'5000 + mech_name.size());
  for (const std::size_t d : {50u, 100u, 200u, 400u, 800u, 1600u}) {
    const Dataset data = source.ResampleDimensions(d, &resample_rng).value();
    const auto dists = PerDimDistributions(data);
    const auto true_mean = data.TrueMean();
    const double eps_per_dim = kEpsilon / static_cast<double>(d);
    std::vector<GaussianDeviation> deviations;
    deviations.reserve(d);
    for (std::size_t j = 0; j < d; ++j) {
      deviations.push_back(
          ModelDeviation(*mechanism, eps_per_dim, dists[j],
                         static_cast<double>(data.num_users()))
              .value()
              .deviation);
    }
    double naive = 0.0;
    double l1 = 0.0;
    double l2 = 0.0;
    double l2_paper = 0.0;
    // Trial-parallel repeats, reduced in trial order (identical output
    // for any HDLDP_BENCH_THREADS).
    struct RepMse {
      double naive = 0.0;
      double l1 = 0.0;
      double l2 = 0.0;
      double l2_paper = 0.0;
    };
    hdldp::framework::ExperimentRunnerOptions runner_options;
    runner_options.seed = 0xF16'5F00 + d;
    runner_options.max_workers = hdldp::bench::MaxWorkers();
    hdldp::framework::ExperimentRunner runner(runner_options);
    runner.ForEachTrial(
        repeats,
        [&](const hdldp::framework::TrialContext& ctx) {
          hdldp::protocol::PipelineOptions opts;
          opts.total_epsilon = kEpsilon;
          opts.report_dims = 0;
          opts.seed = ctx.seed;
          const auto run =
              hdldp::protocol::RunMeanEstimation(data, mechanism, opts)
                  .value();
          RepMse rep;
          rep.naive = run.mse;
          hdldp::hdr4me::Hdr4meOptions h;
          h.regularizer = hdldp::hdr4me::Regularizer::kL1;
          rep.l1 =
              hdldp::protocol::MeanSquaredError(
                  hdldp::hdr4me::Recalibrate(run.estimated_mean, deviations,
                                             h)
                      .value()
                      .enhanced_mean,
                  true_mean)
                  .value();
          h.regularizer = hdldp::hdr4me::Regularizer::kL2;
          rep.l2 =
              hdldp::protocol::MeanSquaredError(
                  hdldp::hdr4me::Recalibrate(run.estimated_mean, deviations,
                                             h)
                      .value()
                      .enhanced_mean,
                  true_mean)
                  .value();
          h.lambda.l2_reference = hdldp::hdr4me::L2Reference::kModelBias;
          rep.l2_paper =
              hdldp::protocol::MeanSquaredError(
                  hdldp::hdr4me::Recalibrate(run.estimated_mean, deviations,
                                             h)
                      .value()
                      .enhanced_mean,
                  true_mean)
                  .value();
          return rep;
        },
        [&](const RepMse& rep) {
          naive += rep.naive;
          l1 += rep.l1;
          l2 += rep.l2;
          l2_paper += rep.l2_paper;
        });
    const double denom = static_cast<double>(repeats);
    std::printf("%10zu %14.5g %14.5g %14.5g %14.5g\n", d, naive / denom,
                l1 / denom, l2 / denom, l2_paper / denom);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  hdldp::bench::PrintHeader(
      "Figure 5: MSE vs. dimensionality on COV-19 (eps=0.8)",
      "n=150,000, d in {50..1600} resampled from 750 source dims, 100 "
      "repeats");
  const std::size_t users = hdldp::bench::ScaledUsers(kPaperUsers);
  hdldp::Rng data_rng(0xC0515);
  hdldp::data::CorrelatedSpec spec;
  spec.num_users = users;
  spec.num_dims = kSourceDims;
  const Dataset source = hdldp::data::GenerateCorrelated(spec, &data_rng).value();
  const std::size_t repeats = hdldp::bench::Repeats();
  RunMechanism("laplace", source, repeats);
  RunMechanism("piecewise", source, repeats);
  return 0;
}
