// Micro-benchmarks (google-benchmark): per-report perturbation throughput
// of every mechanism, collector aggregation, HDR4ME re-calibration, and
// the framework's model construction. These bound the cost of running the
// paper's protocol at population scale.

#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "framework/deviation_model.h"
#include "framework/value_distribution.h"
#include "hdr4me/recalibrate.h"
#include "mech/registry.h"
#include "protocol/aggregator.h"
#include "protocol/client.h"
#include "protocol/report.h"

namespace {

void BM_Perturb(benchmark::State& state, const char* name, double eps) {
  const auto mechanism = hdldp::mech::MakeMechanism(name).value();
  hdldp::Rng rng(42);
  double t = -1.0;
  for (auto _ : state) {
    t += 0.001;
    if (t > 1.0) t = -1.0;
    const double native =
        mechanism->InputDomain().lo == 0.0 ? 0.5 * (t + 1.0) : t;
    benchmark::DoNotOptimize(mechanism->Perturb(native, eps, &rng));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_RngUniform(benchmark::State& state) {
  hdldp::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.UniformDouble());
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_AggregatorConsume(benchmark::State& state) {
  const auto dims = static_cast<std::size_t>(state.range(0));
  auto agg =
      hdldp::protocol::MeanAggregator::Create(dims, hdldp::mech::DomainMap())
          .value();
  hdldp::Rng rng(2);
  std::uint32_t j = 0;
  for (auto _ : state) {
    agg.Consume(j, 0.5);
    if (++j == dims) j = 0;
  }
  state.SetItemsProcessed(state.iterations());
}

// Scalar-vs-batched ingestion: the full client -> aggregator hot path of
// the simulation pipeline for one block of users. Items processed are
// perturbed values, so items/s is ingestion throughput and the ratio of
// the two benchmarks is the batching speedup (the tier-1 contract expects
// batch >= 1.3x scalar).
constexpr std::size_t kIngestUsers = 256;
constexpr std::size_t kIngestDims = 64;

std::vector<double> IngestTuples() {
  hdldp::Rng rng(7);
  std::vector<double> tuples(kIngestUsers * kIngestDims);
  for (double& v : tuples) v = rng.Uniform(-1.0, 1.0);
  return tuples;
}

void BM_IngestScalar(benchmark::State& state, const char* name) {
  const auto mechanism = hdldp::mech::MakeMechanism(name).value();
  hdldp::protocol::ClientOptions opts;
  const auto client =
      hdldp::protocol::Client::Create(mechanism, kIngestDims, opts).value();
  auto agg = hdldp::protocol::MeanAggregator::Create(kIngestDims,
                                                     client.domain_map())
                 .value();
  const std::vector<double> tuples = IngestTuples();
  hdldp::Rng rng(11);
  for (auto _ : state) {
    for (std::size_t i = 0; i < kIngestUsers; ++i) {
      client.ReportTo(
          std::span<const double>(tuples).subspan(i * kIngestDims,
                                                  kIngestDims),
          &rng, [&](std::uint32_t dim, double value) {
            agg.Consume(dim, value);
          });
    }
  }
  benchmark::DoNotOptimize(agg.EstimatedMean());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kIngestUsers * kIngestDims);
}

void BM_IngestBatch(benchmark::State& state, const char* name) {
  const auto mechanism = hdldp::mech::MakeMechanism(name).value();
  hdldp::protocol::ClientOptions opts;
  const auto client =
      hdldp::protocol::Client::Create(mechanism, kIngestDims, opts).value();
  auto agg = hdldp::protocol::MeanAggregator::Create(kIngestDims,
                                                     client.domain_map())
                 .value();
  const std::vector<double> tuples = IngestTuples();
  hdldp::Rng rng(11);
  hdldp::protocol::ReportBatch batch;
  for (auto _ : state) {
    batch.Clear();
    if (!client.ReportBatch(tuples, &rng, &batch).ok() ||
        !agg.ConsumeBatch(batch).ok()) {
      state.SkipWithError("batched ingestion failed");
      return;
    }
  }
  benchmark::DoNotOptimize(agg.EstimatedMean());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kIngestUsers * kIngestDims);
}

void BM_RecalibrateL1(benchmark::State& state) {
  const auto dims = static_cast<std::size_t>(state.range(0));
  hdldp::Rng rng(3);
  std::vector<double> theta(dims);
  std::vector<double> lambda(dims);
  for (std::size_t k = 0; k < dims; ++k) {
    theta[k] = rng.Uniform(-3.0, 3.0);
    lambda[k] = rng.Uniform(0.0, 2.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(hdldp::hdr4me::RecalibrateL1(theta, lambda));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(dims));
}

void BM_ModelDeviation(benchmark::State& state, const char* name) {
  const auto mechanism = hdldp::mech::MakeMechanism(name).value();
  std::vector<double> values;
  std::vector<double> probs;
  for (int k = 0; k < 16; ++k) {
    values.push_back(-1.0 + 2.0 * k / 15.0);
    probs.push_back(1.0 / 16.0);
  }
  const auto dist =
      hdldp::framework::ValueDistribution::Create(values, probs).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hdldp::framework::ModelDeviation(*mechanism, 0.01, dist, 10000.0));
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_Perturb, laplace_eps1, "laplace", 1.0);
BENCHMARK_CAPTURE(BM_Perturb, laplace_eps001, "laplace", 0.01);
BENCHMARK_CAPTURE(BM_Perturb, scdf_eps1, "scdf", 1.0);
BENCHMARK_CAPTURE(BM_Perturb, staircase_eps1, "staircase", 1.0);
BENCHMARK_CAPTURE(BM_Perturb, duchi_eps1, "duchi", 1.0);
BENCHMARK_CAPTURE(BM_Perturb, piecewise_eps1, "piecewise", 1.0);
BENCHMARK_CAPTURE(BM_Perturb, piecewise_eps001, "piecewise", 0.01);
BENCHMARK_CAPTURE(BM_Perturb, hybrid_eps1, "hybrid", 1.0);
BENCHMARK_CAPTURE(BM_Perturb, square_wave_eps1, "square_wave", 1.0);
BENCHMARK_CAPTURE(BM_Perturb, square_wave_eps001, "square_wave", 0.01);
BENCHMARK(BM_RngUniform);
BENCHMARK(BM_AggregatorConsume)->Arg(100)->Arg(10000);
BENCHMARK_CAPTURE(BM_IngestScalar, piecewise, "piecewise");
BENCHMARK_CAPTURE(BM_IngestBatch, piecewise, "piecewise");
BENCHMARK_CAPTURE(BM_IngestScalar, duchi, "duchi");
BENCHMARK_CAPTURE(BM_IngestBatch, duchi, "duchi");
BENCHMARK_CAPTURE(BM_IngestScalar, square_wave, "square_wave");
BENCHMARK_CAPTURE(BM_IngestBatch, square_wave, "square_wave");
BENCHMARK_CAPTURE(BM_IngestScalar, hybrid, "hybrid");
BENCHMARK_CAPTURE(BM_IngestBatch, hybrid, "hybrid");
BENCHMARK(BM_RecalibrateL1)->Arg(1000)->Arg(100000);
BENCHMARK_CAPTURE(BM_ModelDeviation, piecewise, "piecewise");
BENCHMARK_CAPTURE(BM_ModelDeviation, square_wave, "square_wave");
BENCHMARK_CAPTURE(BM_ModelDeviation, laplace, "laplace");

BENCHMARK_MAIN();
