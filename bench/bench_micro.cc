// Micro-benchmarks (google-benchmark): per-report perturbation throughput
// of every mechanism, collector aggregation, HDR4ME re-calibration, and
// the framework's model construction. These bound the cost of running the
// paper's protocol at population scale.

#include <benchmark/benchmark.h>

#include <cstddef>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string_view>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/rng_lanes.h"
#include "engine/chunked_estimation.h"
#include "framework/deviation_model.h"
#include "framework/value_distribution.h"
#include "hdr4me/recalibrate.h"
#include "common/math.h"
#include "mech/duchi.h"
#include "mech/hybrid.h"
#include "mech/piecewise.h"
#include "mech/plan.h"
#include "mech/square_wave.h"
#include "mech/registry.h"
#include "protocol/aggregator.h"
#include "protocol/client.h"
#include "protocol/report.h"

namespace {

void BM_Perturb(benchmark::State& state, const char* name, double eps) {
  const auto mechanism = hdldp::mech::MakeMechanism(name).value();
  hdldp::Rng rng(42);
  double t = -1.0;
  for (auto _ : state) {
    t += 0.001;
    if (t > 1.0) t = -1.0;
    const double native =
        mechanism->InputDomain().lo == 0.0 ? 0.5 * (t + 1.0) : t;
    benchmark::DoNotOptimize(mechanism->Perturb(native, eps, &rng));
  }
  state.SetItemsProcessed(state.iterations());
}

// Per-value throughput of a prepared sampler plan: the same draw as
// BM_Perturb without per-value virtual dispatch or eps-constant
// recomputation. The ratio to BM_Perturb is the pure plan speedup.
void BM_PerturbPlan(benchmark::State& state, const char* name, double eps) {
  const auto mechanism = hdldp::mech::MakeMechanism(name).value();
  const hdldp::mech::SamplerPlan plan = mechanism->MakePlan(eps);
  hdldp::Rng rng(42);
  double t = -1.0;
  for (auto _ : state) {
    t += 0.001;
    if (t > 1.0) t = -1.0;
    const double native =
        mechanism->InputDomain().lo == 0.0 ? 0.5 * (t + 1.0) : t;
    benchmark::DoNotOptimize(hdldp::mech::PerturbOne(plan, native, &rng));
  }
  state.SetItemsProcessed(state.iterations());
}

// Lane-parallel sampling throughput: the same prepared plan driven by
// the 4-wide lane generator (v2 stream contract) over a resident span.
// The ratio to BM_PerturbPlan is the per-mechanism lane speedup tracked
// in BENCH_micro.json. The hybrid rows also pin the shared-round draw
// layout (2 lane rounds per value instead of the original 3; the mixture
// coin doubles as the component coin via threshold folding) — a
// regression back to 3 rounds shows up here as a ~25% throughput drop.
void BM_PerturbLanes(benchmark::State& state, const char* name, double eps) {
  const auto mechanism = hdldp::mech::MakeMechanism(name).value();
  const hdldp::mech::SamplerPlan plan = mechanism->MakePlan(eps);
  hdldp::RngLanes lanes(42);
  constexpr std::size_t kSpan = 4096;
  std::vector<double> ts(kSpan);
  const double lo = mechanism->InputDomain().lo;
  for (std::size_t i = 0; i < kSpan; ++i) {
    const double t = -1.0 + 2.0 * static_cast<double>(i) / (kSpan - 1);
    ts[i] = lo == 0.0 ? 0.5 * (t + 1.0) : t;
  }
  std::vector<double> out(kSpan);
  for (auto _ : state) {
    hdldp::mech::PerturbLanes(plan, ts, &lanes, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kSpan);
}

// Dimension-sampling throughput: scalar Floyd (one SampleWithoutReplacement
// call per user, O(m) suffix-probe per draw) vs the chunk-granular batched
// sampler (bitmask membership probe + sorted bit-walk emission, the v3
// sampled driver's front end). Items are sampled dimensions, so items/s
// ratios are the batched-sampler speedup per (d, m) shape.
void BM_SampleDims(benchmark::State& state, bool batched, std::size_t d,
                   std::size_t m) {
  hdldp::Rng rng(9);
  hdldp::BatchSamplerScratch scratch;
  std::vector<std::uint32_t> out;
  constexpr std::size_t kUsers = 512;
  for (auto _ : state) {
    out.clear();
    if (batched) {
      rng.SampleWithoutReplacementBatch(d, m, kUsers, /*sorted=*/true,
                                        &scratch, &out);
    } else {
      for (std::size_t u = 0; u < kUsers; ++u) {
        rng.SampleWithoutReplacement(d, m, &out);
      }
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kUsers * m);
}

// Sampled-path ingestion through the real engine driver: one 4096-user
// chunk of a mean-style workload (each sampled dimension expands to one
// gathered entry), v2's per-user lane spans vs v3's cross-user batched
// blocks. The v2-vs-v3 ratio per (mechanism, m) is the batched-stream
// speedup tracked in BENCH_micro.json.
void BM_IngestSampled(benchmark::State& state, const char* name,
                      hdldp::SeedScheme scheme, std::size_t m) {
  constexpr std::size_t kDims = 512;
  constexpr std::size_t kUsers = 4096;  // One engine chunk.
  const auto mechanism = hdldp::mech::MakeMechanism(name).value();
  const auto map =
      hdldp::mech::DomainMap::Between({-1.0, 1.0}, mechanism->InputDomain())
          .value();
  const hdldp::mech::SamplerPlan plan =
      mechanism->MakePlan(1.0 / static_cast<double>(m));
  hdldp::Rng data_rng(7);
  std::vector<double> tuples(kUsers * kDims);
  for (double& v : tuples) v = data_rng.Uniform(-1.0, 1.0);
  hdldp::engine::EngineOptions engine_options;
  engine_options.seed = 1;
  engine_options.seed_scheme = scheme;
  const hdldp::engine::ChunkedEstimation core(kUsers, engine_options);
  const hdldp::engine::ChunkRange range = core.Range(0);
  auto agg = hdldp::protocol::MeanAggregator::Create(kDims, map).value();
  for (auto _ : state) {
    agg.Reset();
    const auto status = core.PerturbSampledChunk(
        plan, range, kDims, m, &agg,
        [&](std::size_t user, std::span<const std::uint32_t> dims,
            std::vector<std::uint32_t>* entry_indices,
            std::vector<double>* natives) {
          entry_indices->insert(entry_indices->end(), dims.begin(),
                                dims.end());
          const std::size_t base = natives->size();
          natives->resize(base + dims.size());
          double* out = natives->data() + base;
          const double* row = tuples.data() + user * kDims;
          for (std::size_t k = 0; k < dims.size(); ++k) {
            out[k] = map.Forward(row[dims[k]]);
          }
        });
    if (!status.ok()) {
      state.SkipWithError("sampled ingestion failed");
      return;
    }
  }
  benchmark::DoNotOptimize(agg.EstimatedMean());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kUsers * m);
}

void BM_RngUniform(benchmark::State& state) {
  hdldp::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.UniformDouble());
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_RngUniformLanes(benchmark::State& state) {
  hdldp::RngLanes lanes(1);
  double u[hdldp::RngLanes::kLanes];
  for (auto _ : state) {
    lanes.UniformDoubleLanes(u);
    benchmark::DoNotOptimize(u[0]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          hdldp::RngLanes::kLanes);
}

void BM_AggregatorConsume(benchmark::State& state) {
  const auto dims = static_cast<std::size_t>(state.range(0));
  auto agg =
      hdldp::protocol::MeanAggregator::Create(dims, hdldp::mech::DomainMap())
          .value();
  hdldp::Rng rng(2);
  std::uint32_t j = 0;
  for (auto _ : state) {
    agg.Consume(j, 0.5);
    if (++j == dims) j = 0;
  }
  state.SetItemsProcessed(state.iterations());
}

// Scalar-vs-batched-vs-planned ingestion: the full client -> aggregator
// hot path of the simulation pipeline for one block of users. Items
// processed are perturbed values, so items/s is ingestion throughput and
// benchmark ratios are the path speedups:
//
//   IngestScalar  per-value virtual Perturb + per-entry Consume
//                 (the seed repo's original path);
//   IngestBatch   PR 1's per-user virtual PerturbBatch, re-deriving the
//                 eps constants per user block, + ConsumeBatch;
//   IngestPlan    this PR's path: one prepared plan per experiment, dense
//                 all-dims reporting, ConsumeDense (expected >= 1.5x
//                 IngestBatch and >= 4x IngestScalar for the bounded
//                 mechanisms).
constexpr std::size_t kIngestUsers = 256;
constexpr std::size_t kIngestDims = 64;

std::vector<double> IngestTuples() {
  hdldp::Rng rng(7);
  std::vector<double> tuples(kIngestUsers * kIngestDims);
  for (double& v : tuples) v = rng.Uniform(-1.0, 1.0);
  return tuples;
}

void BM_IngestScalar(benchmark::State& state, const char* name) {
  const auto mechanism = hdldp::mech::MakeMechanism(name).value();
  hdldp::protocol::ClientOptions opts;
  const auto client =
      hdldp::protocol::Client::Create(mechanism, kIngestDims, opts).value();
  auto agg = hdldp::protocol::MeanAggregator::Create(kIngestDims,
                                                     client.domain_map())
                 .value();
  const std::vector<double> tuples = IngestTuples();
  hdldp::Rng rng(11);
  for (auto _ : state) {
    for (std::size_t i = 0; i < kIngestUsers; ++i) {
      client.ReportTo(
          std::span<const double>(tuples).subspan(i * kIngestDims,
                                                  kIngestDims),
          &rng, [&](std::uint32_t dim, double value) {
            agg.Consume(dim, value);
          });
    }
  }
  benchmark::DoNotOptimize(agg.EstimatedMean());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kIngestUsers * kIngestDims);
}

// PR 1's per-mechanism PerturbBatch bodies, reproduced from that commit
// so BM_IngestBatch keeps measuring the historical baseline the plan path
// is compared against: eps constants hoisted per call (so re-derived per
// 64-value user block) and the branchy per-value sampling of the original
// scalar code. Current Mechanism::PerturbBatch routes through MakePlan's
// branch-free bodies, which would silently modernize the baseline.
void Pr1PerturbBatch(std::string_view name, std::span<const double> ts,
                     double eps, hdldp::Rng* rng, std::span<double> out) {
  using hdldp::Clamp;
  if (name == "piecewise") {
    const double s = std::exp(0.5 * eps);
    const double q = hdldp::mech::PiecewiseMechanism::OutputBound(eps);
    const double band_mass = s / (s + 1.0);
    for (std::size_t i = 0; i < ts.size(); ++i) {
      const double t = Clamp(ts[i], -1.0, 1.0);
      const double l = 0.5 * (q + 1.0) * t - 0.5 * (q - 1.0);
      const double r = l + q - 1.0;
      if (rng->Bernoulli(band_mass)) {
        out[i] = rng->Uniform(l, r);
        continue;
      }
      const double left_len = l + q;
      const double u = rng->Uniform(0.0, q + 1.0);
      out[i] = u < left_len ? -q + u : r + (u - left_len);
    }
  } else if (name == "square_wave") {
    const double b = hdldp::mech::SquareWaveMechanism::HalfWidth(eps);
    const double e = std::exp(eps);
    const double window_mass = 2.0 * b * e / (2.0 * b * e + 1.0);
    for (std::size_t i = 0; i < ts.size(); ++i) {
      const double t = Clamp(ts[i], 0.0, 1.0);
      if (rng->Bernoulli(window_mass)) {
        out[i] = rng->Uniform(t - b, t + b);
        continue;
      }
      const double u = rng->UniformDouble();
      out[i] = u < t ? -b + u : (t + b) + (u - t);
    }
  } else if (name == "duchi") {
    const double b = hdldp::mech::DuchiMechanism::OutputMagnitude(eps);
    const double em = std::expm1(eps);
    const double denom = 2.0 * (std::exp(eps) + 1.0);
    for (std::size_t i = 0; i < ts.size(); ++i) {
      const double t = Clamp(ts[i], -1.0, 1.0);
      out[i] = rng->Bernoulli(0.5 + t * em / denom) ? b : -b;
    }
  } else if (name == "hybrid") {
    const double alpha = hdldp::mech::HybridMechanism::PiecewiseWeight(eps);
    const double s = std::exp(0.5 * eps);
    const double q = hdldp::mech::PiecewiseMechanism::OutputBound(eps);
    const double band_mass = s / (s + 1.0);
    const double b = hdldp::mech::DuchiMechanism::OutputMagnitude(eps);
    const double em = std::expm1(eps);
    const double denom = 2.0 * (std::exp(eps) + 1.0);
    for (std::size_t i = 0; i < ts.size(); ++i) {
      const double t = Clamp(ts[i], -1.0, 1.0);
      if (rng->Bernoulli(alpha)) {
        const double l = 0.5 * (q + 1.0) * t - 0.5 * (q - 1.0);
        const double r = l + q - 1.0;
        if (rng->Bernoulli(band_mass)) {
          out[i] = rng->Uniform(l, r);
        } else {
          const double left_len = l + q;
          const double u = rng->Uniform(0.0, q + 1.0);
          out[i] = u < left_len ? -q + u : r + (u - left_len);
        }
      } else {
        out[i] = rng->Bernoulli(0.5 + t * em / denom) ? b : -b;
      }
    }
  } else {
    std::abort();  // Baseline only reproduced for the captured mechanisms.
  }
}

void BM_IngestBatch(benchmark::State& state, const char* name) {
  // PR 1's batched client loop: per user, sample dimensions, gather
  // through the domain map, run the PR 1 PerturbBatch body above (eps
  // constants re-derived per user block), append to the batch.
  const auto mechanism = hdldp::mech::MakeMechanism(name).value();
  hdldp::protocol::ClientOptions opts;
  const auto client =
      hdldp::protocol::Client::Create(mechanism, kIngestDims, opts).value();
  const double eps = client.PerDimensionEpsilon();
  const hdldp::mech::DomainMap& map = client.domain_map();
  auto agg = hdldp::protocol::MeanAggregator::Create(kIngestDims,
                                                     client.domain_map())
                 .value();
  const std::vector<double> tuples = IngestTuples();
  hdldp::Rng rng(11);
  hdldp::protocol::ReportBatch batch;
  std::vector<std::uint32_t> dims;
  std::vector<double> natives(kIngestDims);
  for (auto _ : state) {
    batch.Clear();
    for (std::size_t i = 0; i < kIngestUsers; ++i) {
      dims.clear();
      rng.SampleWithoutReplacement(kIngestDims, kIngestDims, &dims);
      for (std::size_t k = 0; k < kIngestDims; ++k) {
        natives[k] = map.Forward(tuples[i * kIngestDims + dims[k]]);
      }
      const std::size_t base = batch.values.size();
      batch.values.resize(base + kIngestDims);
      Pr1PerturbBatch(
          name, natives, eps, &rng,
          std::span<double>(batch.values).subspan(base, kIngestDims));
      batch.dimensions.insert(batch.dimensions.end(), dims.begin(),
                              dims.end());
    }
    if (!agg.ConsumeBatch(batch).ok()) {
      state.SkipWithError("batched ingestion failed");
      return;
    }
  }
  benchmark::DoNotOptimize(agg.EstimatedMean());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kIngestUsers * kIngestDims);
}

void BM_IngestPlan(benchmark::State& state, const char* name) {
  // This PR's ingestion path: the client's plan is prepared once at
  // Create(), ReportDense skips dimension sampling (m == d) and inlines
  // the plan body into one loop, ConsumeDense folds whole rows.
  const auto mechanism = hdldp::mech::MakeMechanism(name).value();
  hdldp::protocol::ClientOptions opts;
  const auto client =
      hdldp::protocol::Client::Create(mechanism, kIngestDims, opts).value();
  auto agg = hdldp::protocol::MeanAggregator::Create(kIngestDims,
                                                     client.domain_map())
                 .value();
  const std::vector<double> tuples = IngestTuples();
  hdldp::Rng rng(11);
  std::vector<double> perturbed(kIngestUsers * kIngestDims);
  for (auto _ : state) {
    if (!client.ReportDense(tuples, &rng, perturbed).ok() ||
        !agg.ConsumeDense(perturbed).ok()) {
      state.SkipWithError("planned ingestion failed");
      return;
    }
  }
  benchmark::DoNotOptimize(agg.EstimatedMean());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kIngestUsers * kIngestDims);
}

void BM_IngestLanes(benchmark::State& state, const char* name) {
  // The v2 lane ingestion path (what engine::ChunkedEstimation's dense
  // driver runs per chunk for both the mean and frequency pipelines):
  // one prepared plan, the whole block gathered through the domain map
  // and perturbed as a single lane span, ConsumeDense folding complete
  // rows. Pinned against BM_IngestPlan (the PR 2 plan path) for the
  // per-mechanism lane speedup.
  const auto mechanism = hdldp::mech::MakeMechanism(name).value();
  hdldp::protocol::ClientOptions opts;
  const auto client =
      hdldp::protocol::Client::Create(mechanism, kIngestDims, opts).value();
  const hdldp::mech::SamplerPlan plan =
      mechanism->MakePlan(client.PerDimensionEpsilon());
  const hdldp::mech::DomainMap& map = client.domain_map();
  auto agg = hdldp::protocol::MeanAggregator::Create(kIngestDims,
                                                     client.domain_map())
                 .value();
  const std::vector<double> tuples = IngestTuples();
  hdldp::RngLanes lanes(11);
  std::vector<double> natives(kIngestUsers * kIngestDims);
  std::vector<double> perturbed(kIngestUsers * kIngestDims);
  for (auto _ : state) {
    for (std::size_t k = 0; k < natives.size(); ++k) {
      natives[k] = map.Forward(tuples[k]);
    }
    hdldp::mech::PerturbLanes(plan, natives, &lanes, perturbed);
    if (!agg.ConsumeDense(perturbed).ok()) {
      state.SkipWithError("lane ingestion failed");
      return;
    }
  }
  benchmark::DoNotOptimize(agg.EstimatedMean());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kIngestUsers * kIngestDims);
}

void BM_RecalibrateL1(benchmark::State& state) {
  const auto dims = static_cast<std::size_t>(state.range(0));
  hdldp::Rng rng(3);
  std::vector<double> theta(dims);
  std::vector<double> lambda(dims);
  for (std::size_t k = 0; k < dims; ++k) {
    theta[k] = rng.Uniform(-3.0, 3.0);
    lambda[k] = rng.Uniform(0.0, 2.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(hdldp::hdr4me::RecalibrateL1(theta, lambda));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(dims));
}

void BM_ModelDeviation(benchmark::State& state, const char* name) {
  const auto mechanism = hdldp::mech::MakeMechanism(name).value();
  std::vector<double> values;
  std::vector<double> probs;
  for (int k = 0; k < 16; ++k) {
    values.push_back(-1.0 + 2.0 * k / 15.0);
    probs.push_back(1.0 / 16.0);
  }
  const auto dist =
      hdldp::framework::ValueDistribution::Create(values, probs).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hdldp::framework::ModelDeviation(*mechanism, 0.01, dist, 10000.0));
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_Perturb, laplace_eps1, "laplace", 1.0);
BENCHMARK_CAPTURE(BM_Perturb, laplace_eps001, "laplace", 0.01);
BENCHMARK_CAPTURE(BM_Perturb, scdf_eps1, "scdf", 1.0);
BENCHMARK_CAPTURE(BM_Perturb, staircase_eps1, "staircase", 1.0);
BENCHMARK_CAPTURE(BM_Perturb, duchi_eps1, "duchi", 1.0);
BENCHMARK_CAPTURE(BM_Perturb, piecewise_eps1, "piecewise", 1.0);
BENCHMARK_CAPTURE(BM_Perturb, piecewise_eps001, "piecewise", 0.01);
BENCHMARK_CAPTURE(BM_Perturb, hybrid_eps1, "hybrid", 1.0);
BENCHMARK_CAPTURE(BM_Perturb, square_wave_eps1, "square_wave", 1.0);
BENCHMARK_CAPTURE(BM_Perturb, square_wave_eps001, "square_wave", 0.01);
BENCHMARK_CAPTURE(BM_PerturbPlan, laplace_eps001, "laplace", 0.01);
BENCHMARK_CAPTURE(BM_PerturbPlan, piecewise_eps001, "piecewise", 0.01);
BENCHMARK_CAPTURE(BM_PerturbPlan, square_wave_eps001, "square_wave", 0.01);
BENCHMARK_CAPTURE(BM_PerturbPlan, hybrid_eps1, "hybrid", 1.0);
BENCHMARK_CAPTURE(BM_PerturbPlan, staircase_eps1, "staircase", 1.0);
BENCHMARK_CAPTURE(BM_PerturbPlan, scdf_eps1, "scdf", 1.0);
BENCHMARK_CAPTURE(BM_PerturbLanes, laplace_eps001, "laplace", 0.01);
BENCHMARK_CAPTURE(BM_PerturbLanes, piecewise_eps001, "piecewise", 0.01);
BENCHMARK_CAPTURE(BM_PerturbLanes, square_wave_eps001, "square_wave", 0.01);
BENCHMARK_CAPTURE(BM_PerturbLanes, hybrid_eps1, "hybrid", 1.0);
BENCHMARK_CAPTURE(BM_PerturbLanes, staircase_eps1, "staircase", 1.0);
BENCHMARK_CAPTURE(BM_PerturbLanes, scdf_eps1, "scdf", 1.0);
BENCHMARK_CAPTURE(BM_SampleDims, scalar_d128_m1, false, 128, 1);
BENCHMARK_CAPTURE(BM_SampleDims, batched_d128_m1, true, 128, 1);
BENCHMARK_CAPTURE(BM_SampleDims, scalar_d128_m8, false, 128, 8);
BENCHMARK_CAPTURE(BM_SampleDims, batched_d128_m8, true, 128, 8);
BENCHMARK_CAPTURE(BM_SampleDims, scalar_d128_m64, false, 128, 64);
BENCHMARK_CAPTURE(BM_SampleDims, batched_d128_m64, true, 128, 64);
BENCHMARK_CAPTURE(BM_SampleDims, scalar_d1024_m1, false, 1024, 1);
BENCHMARK_CAPTURE(BM_SampleDims, batched_d1024_m1, true, 1024, 1);
BENCHMARK_CAPTURE(BM_SampleDims, scalar_d1024_m8, false, 1024, 8);
BENCHMARK_CAPTURE(BM_SampleDims, batched_d1024_m8, true, 1024, 8);
BENCHMARK_CAPTURE(BM_SampleDims, scalar_d1024_m64, false, 1024, 64);
BENCHMARK_CAPTURE(BM_SampleDims, batched_d1024_m64, true, 1024, 64);
BENCHMARK_CAPTURE(BM_IngestSampled, laplace_m8_v2, "laplace",
                  hdldp::SeedScheme::kV2Lanes, 8);
BENCHMARK_CAPTURE(BM_IngestSampled, laplace_m8_v3, "laplace",
                  hdldp::SeedScheme::kV3Batched, 8);
BENCHMARK_CAPTURE(BM_IngestSampled, laplace_m64_v2, "laplace",
                  hdldp::SeedScheme::kV2Lanes, 64);
BENCHMARK_CAPTURE(BM_IngestSampled, laplace_m64_v3, "laplace",
                  hdldp::SeedScheme::kV3Batched, 64);
BENCHMARK_CAPTURE(BM_IngestSampled, piecewise_m8_v2, "piecewise",
                  hdldp::SeedScheme::kV2Lanes, 8);
BENCHMARK_CAPTURE(BM_IngestSampled, piecewise_m8_v3, "piecewise",
                  hdldp::SeedScheme::kV3Batched, 8);
BENCHMARK_CAPTURE(BM_IngestSampled, piecewise_m64_v2, "piecewise",
                  hdldp::SeedScheme::kV2Lanes, 64);
BENCHMARK_CAPTURE(BM_IngestSampled, piecewise_m64_v3, "piecewise",
                  hdldp::SeedScheme::kV3Batched, 64);
BENCHMARK(BM_RngUniform);
BENCHMARK(BM_RngUniformLanes);
BENCHMARK(BM_AggregatorConsume)->Arg(100)->Arg(10000);
BENCHMARK_CAPTURE(BM_IngestScalar, laplace, "laplace");
BENCHMARK_CAPTURE(BM_IngestPlan, laplace, "laplace");
BENCHMARK_CAPTURE(BM_IngestLanes, laplace, "laplace");
BENCHMARK_CAPTURE(BM_IngestScalar, piecewise, "piecewise");
BENCHMARK_CAPTURE(BM_IngestBatch, piecewise, "piecewise");
BENCHMARK_CAPTURE(BM_IngestPlan, piecewise, "piecewise");
BENCHMARK_CAPTURE(BM_IngestLanes, piecewise, "piecewise");
BENCHMARK_CAPTURE(BM_IngestScalar, duchi, "duchi");
BENCHMARK_CAPTURE(BM_IngestBatch, duchi, "duchi");
BENCHMARK_CAPTURE(BM_IngestPlan, duchi, "duchi");
BENCHMARK_CAPTURE(BM_IngestLanes, duchi, "duchi");
BENCHMARK_CAPTURE(BM_IngestScalar, square_wave, "square_wave");
BENCHMARK_CAPTURE(BM_IngestBatch, square_wave, "square_wave");
BENCHMARK_CAPTURE(BM_IngestPlan, square_wave, "square_wave");
BENCHMARK_CAPTURE(BM_IngestLanes, square_wave, "square_wave");
BENCHMARK_CAPTURE(BM_IngestScalar, hybrid, "hybrid");
BENCHMARK_CAPTURE(BM_IngestBatch, hybrid, "hybrid");
BENCHMARK_CAPTURE(BM_IngestPlan, hybrid, "hybrid");
BENCHMARK_CAPTURE(BM_IngestLanes, hybrid, "hybrid");
BENCHMARK(BM_RecalibrateL1)->Arg(1000)->Arg(100000);
BENCHMARK_CAPTURE(BM_ModelDeviation, piecewise, "piecewise");
BENCHMARK_CAPTURE(BM_ModelDeviation, square_wave, "square_wave");
BENCHMARK_CAPTURE(BM_ModelDeviation, laplace, "laplace");

BENCHMARK_MAIN();
