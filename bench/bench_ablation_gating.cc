// Ablation A2: threshold gating (the Lemma 4/5 preconditions as a guard).
//
// The paper's evaluation applies HDR4ME unconditionally and observes that
// Square wave — whose concentrated perturbation keeps deviations small —
// can get *worse* (Figs. 4(c,f,i,l)). Gating re-calibrates a dimension
// only when the predicted sup-deviation exceeds the lemma threshold
// (1 for L1, 2 for L2), so it must recover naive aggregation exactly in
// the low-noise regime while keeping the high-noise gains.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "data/generators.h"
#include "framework/deviation_model.h"
#include "framework/experiment_runner.h"
#include "framework/value_distribution.h"
#include "hdr4me/recalibrate.h"
#include "mech/registry.h"
#include "protocol/metrics.h"
#include "protocol/pipeline.h"

namespace {

using hdldp::framework::GaussianDeviation;

double RunOnce(const hdldp::data::Dataset& data,
               const std::vector<GaussianDeviation>& deviations,
               const std::vector<double>& estimate,
               const std::vector<double>& true_mean,
               hdldp::hdr4me::Regularizer reg, bool gated) {
  hdldp::hdr4me::Hdr4meOptions h;
  h.regularizer = reg;
  h.lambda.gate_on_threshold = gated;
  const auto r =
      hdldp::hdr4me::Recalibrate(estimate, deviations, h).value();
  (void)data;
  return hdldp::protocol::MeanSquaredError(r.enhanced_mean, true_mean)
      .value();
}

}  // namespace

int main() {
  using hdldp::framework::ModelDeviation;
  using hdldp::framework::ValueDistribution;

  hdldp::bench::PrintHeader(
      "Ablation A2: Lemma 4/5 threshold gating on Square wave",
      "Gaussian dataset n=100,000, d=100, m=d; Square wave eps grid");
  const std::size_t users = hdldp::bench::ScaledUsers(100000);
  const std::size_t repeats = hdldp::bench::Repeats();
  constexpr std::size_t kDims = 100;

  hdldp::Rng data_rng(0xAB2A);
  hdldp::data::GaussianSpec spec;
  spec.num_users = users;
  spec.num_dims = kDims;
  const auto data = hdldp::data::GenerateGaussian(spec, &data_rng).value();
  const auto true_mean = data.TrueMean();
  const auto mechanism = hdldp::mech::MakeMechanism("square_wave").value();

  std::printf("%10s %14s %14s %14s %14s %14s\n", "eps", "naive", "L1",
              "L1-gated", "L2", "L2-gated");
  std::vector<double> column(std::min<std::size_t>(users, 2000));
  for (const double eps : {0.1, 10.0, 100.0, 1000.0, 5000.0}) {
    const double eps_per_dim = eps / static_cast<double>(kDims);
    std::vector<GaussianDeviation> deviations;
    for (std::size_t j = 0; j < kDims; ++j) {
      for (std::size_t i = 0; i < column.size(); ++i) {
        column[i] = data.At(i, j);
      }
      deviations.push_back(
          ModelDeviation(*mechanism, eps_per_dim,
                         ValueDistribution::FromSamples(column, 16).value(),
                         static_cast<double>(users))
              .value()
              .deviation);
    }
    double naive = 0.0;
    double l1 = 0.0;
    double l1g = 0.0;
    double l2 = 0.0;
    double l2g = 0.0;
    // Trial-parallel repeats, reduced in trial order.
    struct RepMse {
      double naive, l1, l1g, l2, l2g;
    };
    hdldp::framework::ExperimentRunnerOptions runner_options;
    runner_options.seed = 0xAB2A00 + static_cast<std::uint64_t>(eps);
    runner_options.max_workers = hdldp::bench::MaxWorkers();
    hdldp::framework::ExperimentRunner runner(runner_options);
    runner.ForEachTrial(
        repeats,
        [&](const hdldp::framework::TrialContext& ctx) {
          hdldp::protocol::PipelineOptions opts;
          opts.total_epsilon = eps;
          opts.seed = ctx.seed;
          const auto run =
              hdldp::protocol::RunMeanEstimation(data, mechanism, opts)
                  .value();
          return RepMse{
              run.mse,
              RunOnce(data, deviations, run.estimated_mean, true_mean,
                      hdldp::hdr4me::Regularizer::kL1, false),
              RunOnce(data, deviations, run.estimated_mean, true_mean,
                      hdldp::hdr4me::Regularizer::kL1, true),
              RunOnce(data, deviations, run.estimated_mean, true_mean,
                      hdldp::hdr4me::Regularizer::kL2, false),
              RunOnce(data, deviations, run.estimated_mean, true_mean,
                      hdldp::hdr4me::Regularizer::kL2, true)};
        },
        [&](const RepMse& rep) {
          naive += rep.naive;
          l1 += rep.l1;
          l1g += rep.l1g;
          l2 += rep.l2;
          l2g += rep.l2g;
        });
    const double denom = static_cast<double>(repeats);
    std::printf("%10g %14.5g %14.5g %14.5g %14.5g %14.5g\n", eps,
                naive / denom, l1 / denom, l1g / denom, l2 / denom,
                l2g / denom);
  }
  std::printf("\nGated columns should track min(naive, ungated): gating "
              "declines to re-calibrate when the lemma preconditions fail.\n");
  return 0;
}
