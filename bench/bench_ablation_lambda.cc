// Ablation A1: sensitivity of HDR4ME to the lambda* confidence multiplier.
//
// Lemmas 4-5 set lambda*_j = sup|theta-hat_j - theta-bar_j|; the framework
// instantiates the supremum as |delta_j| + z sigma_j. This bench sweeps z
// and reports MSE for L1 and L2 on the Gaussian dataset, showing (i) the
// improvement is robust across a wide z band and (ii) z -> 0 degenerates
// to naive aggregation while huge z over-shrinks L1 toward the zero
// vector (whose MSE equals the mean-square of theta-bar).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "data/generators.h"
#include "framework/deviation_model.h"
#include "framework/experiment_runner.h"
#include "framework/value_distribution.h"
#include "hdr4me/recalibrate.h"
#include "mech/registry.h"
#include "protocol/metrics.h"
#include "protocol/pipeline.h"

int main() {
  using hdldp::framework::GaussianDeviation;
  using hdldp::framework::ModelDeviation;
  using hdldp::framework::ValueDistribution;

  hdldp::bench::PrintHeader(
      "Ablation A1: lambda* confidence multiplier sweep",
      "Gaussian dataset n=100,000, d=200, eps=0.4, m=d");
  const std::size_t users = hdldp::bench::ScaledUsers(100000);
  const std::size_t repeats = hdldp::bench::Repeats();
  constexpr std::size_t kDims = 200;
  constexpr double kEps = 0.4;

  hdldp::Rng data_rng(0xAB1A);
  hdldp::data::GaussianSpec spec;
  spec.num_users = users;
  spec.num_dims = kDims;
  const auto data = hdldp::data::GenerateGaussian(spec, &data_rng).value();
  const auto true_mean = data.TrueMean();
  const auto mechanism = hdldp::mech::MakeMechanism("piecewise").value();

  // Shared per-dimension deviation models.
  const double eps_per_dim = kEps / static_cast<double>(kDims);
  std::vector<GaussianDeviation> deviations;
  std::vector<double> column(std::min<std::size_t>(users, 2000));
  for (std::size_t j = 0; j < kDims; ++j) {
    for (std::size_t i = 0; i < column.size(); ++i) column[i] = data.At(i, j);
    deviations.push_back(
        ModelDeviation(*mechanism, eps_per_dim,
                       ValueDistribution::FromSamples(column, 16).value(),
                       static_cast<double>(users))
            .value()
            .deviation);
  }

  // Baseline runs (shared across z), trial-parallel and reduced in trial
  // order.
  std::vector<std::vector<double>> estimates;
  double naive_mse = 0.0;
  hdldp::framework::ExperimentRunnerOptions runner_options;
  runner_options.seed = 0xAB1A00;
  runner_options.max_workers = hdldp::bench::MaxWorkers();
  hdldp::framework::ExperimentRunner runner(runner_options);
  runner.ForEachTrial(
      repeats,
      [&](const hdldp::framework::TrialContext& ctx) {
        hdldp::protocol::PipelineOptions opts;
        opts.total_epsilon = kEps;
        opts.seed = ctx.seed;
        return hdldp::protocol::RunMeanEstimation(data, mechanism, opts)
            .value();
      },
      [&](hdldp::protocol::MeanEstimationResult& run) {
        naive_mse += run.mse;
        estimates.push_back(std::move(run.estimated_mean));
      });
  naive_mse /= static_cast<double>(repeats);
  std::printf("naive aggregation MSE: %.5g\n\n", naive_mse);

  std::printf("%10s %14s %14s\n", "z", "L1-MSE", "L2-MSE");
  for (const double z : {0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 10.0}) {
    double l1 = 0.0;
    double l2 = 0.0;
    for (const auto& estimate : estimates) {
      hdldp::hdr4me::Hdr4meOptions h;
      h.lambda.confidence_z = z;
      h.regularizer = hdldp::hdr4me::Regularizer::kL1;
      l1 += hdldp::protocol::MeanSquaredError(
                hdldp::hdr4me::Recalibrate(estimate, deviations, h)
                    .value()
                    .enhanced_mean,
                true_mean)
                .value();
      h.regularizer = hdldp::hdr4me::Regularizer::kL2;
      l2 += hdldp::protocol::MeanSquaredError(
                hdldp::hdr4me::Recalibrate(estimate, deviations, h)
                    .value()
                    .enhanced_mean,
                true_mean)
                .value();
    }
    std::printf("%10g %14.5g %14.5g\n", z,
                l1 / static_cast<double>(estimates.size()),
                l2 / static_cast<double>(estimates.size()));
  }
  // Reference: the all-zero estimate every over-shrunk L1 converges to.
  double zero_mse = 0.0;
  for (const double t : true_mean) zero_mse += t * t;
  std::printf("\nall-zero estimate MSE (L1's large-z limit): %.5g\n",
              zero_mse / static_cast<double>(kDims));
  return 0;
}
