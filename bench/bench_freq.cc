// Frequency-estimation extension benchmark (paper Section V-C, experiment
// A4 in DESIGN.md): raw vs. HDR4ME-re-calibrated frequency MSE across
// mechanisms, category cardinalities and budgets, on Zipf-distributed
// categorical data.
//
// The expanded one-hot space has sum_j v_j entries, each perturbed at
// eps/(2m): exactly the high-dimensional regime HDR4ME targets.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "framework/experiment_runner.h"
#include "freq/encoding.h"
#include "freq/pipeline.h"
#include "mech/registry.h"

namespace {

constexpr std::size_t kPaperUsers = 100000;
constexpr std::size_t kDims = 20;  // Categorical dimensions.

// One JSON row per (cardinality, mechanism, eps) cell for the
// HDLDP_BENCH_JSON record (mirrors the BENCH_micro.json CI artifact).
struct JsonRow {
  std::size_t cardinality = 0;
  std::string mechanism;
  double eps = 0.0;
  double seconds = 0.0;
  double mse_raw = 0.0;
  double mse_recalibrated = 0.0;
};

std::vector<JsonRow>& JsonRows() {
  static std::vector<JsonRow> rows;
  return rows;
}

void WriteJson(const char* path, double total_seconds, std::size_t users,
               std::size_t repeats) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_freq: cannot write %s\n", path);
    return;
  }
  std::fprintf(f,
               "{\n  \"benchmark\": \"bench_freq\",\n"
               "  \"users\": %zu,\n  \"repeats\": %zu,\n"
               "  \"wall_seconds\": %.6f,\n  \"cells\": [\n",
               users, repeats, total_seconds);
  const auto& rows = JsonRows();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f,
                 "    {\"cardinality\": %zu, \"mechanism\": \"%s\", "
                 "\"eps\": %g, \"seconds\": %.6f, \"mse_raw\": %.6g, "
                 "\"mse_recalibrated\": %.6g}%s\n",
                 rows[i].cardinality, rows[i].mechanism.c_str(), rows[i].eps,
                 rows[i].seconds, rows[i].mse_raw, rows[i].mse_recalibrated,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

void RunCardinality(std::size_t users, std::size_t cardinality,
                    std::size_t repeats) {
  const auto schema = hdldp::freq::CategoricalSchema::Create(
                          std::vector<std::size_t>(kDims, cardinality))
                          .value();
  hdldp::Rng data_rng(0xF8E0 + cardinality);
  const auto dataset =
      hdldp::freq::GenerateCategorical(users, schema, 1.2, &data_rng).value();
  std::printf("--- d=%zu categorical dims x v=%zu categories "
              "(%zu expanded entries), Zipf(1.2) ---\n",
              kDims, cardinality, schema.total_entries());
  std::printf("%-12s %8s %14s %14s %10s\n", "mechanism", "eps", "raw-MSE",
              "HDR4ME-MSE", "gain");
  for (const auto mech_name : {"laplace", "piecewise", "square_wave"}) {
    for (const double eps : {0.5, 1.0, 2.0}) {
      double raw = 0.0;
      double recal = 0.0;
      const hdldp::bench::Stopwatch cell_watch;
      // Trial-parallel repeats, reduced in trial order. Each trial also
      // streams its chunks over the shared pool (the nesting-safe
      // ParallelFor), so HDLDP_BENCH_THREADS bounds total concurrency
      // without changing any estimate.
      hdldp::framework::ExperimentRunnerOptions runner_options;
      runner_options.seed = 0xF8E000 + cardinality +
                            static_cast<std::uint64_t>(eps * 1000.0);
      runner_options.max_workers = hdldp::bench::MaxWorkers();
      hdldp::framework::ExperimentRunner runner(runner_options);
      runner.ForEachTrial(
          repeats,
          [&](const hdldp::framework::TrialContext& ctx) {
            hdldp::freq::FrequencyOptions opts;
            opts.total_epsilon = eps;
            opts.seed = ctx.seed;
            opts.num_threads = hdldp::bench::MaxWorkers();
            opts.clip_and_normalize = true;
            opts.hdr4me.regularizer = hdldp::hdr4me::Regularizer::kL1;
            const auto result =
                hdldp::freq::RunFrequencyEstimation(
                    dataset, hdldp::mech::MakeMechanism(mech_name).value(),
                    opts)
                    .value();
            return std::pair<double, double>(result.mse_raw,
                                             result.mse_recalibrated);
          },
          [&](const std::pair<double, double>& mses) {
            raw += mses.first;
            recal += mses.second;
          });
      raw /= static_cast<double>(repeats);
      recal /= static_cast<double>(repeats);
      std::printf("%-12s %8g %14.5g %14.5g %9.2fx\n", mech_name, eps, raw,
                  recal, raw / recal);
      JsonRows().push_back({cardinality, mech_name, eps, cell_watch.Seconds(),
                            raw, recal});
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  hdldp::bench::PrintHeader(
      "Section V-C extension: high-dimensional frequency estimation",
      "n=100,000 users, 20 categorical dims, Zipf(1.2) categories");
  const std::size_t users = hdldp::bench::ScaledUsers(kPaperUsers);
  const std::size_t repeats = hdldp::bench::Repeats();
  const hdldp::bench::Stopwatch watch;
  for (const std::size_t cardinality : {4u, 16u}) {
    RunCardinality(users, cardinality, repeats);
  }
  const double total_seconds = watch.Seconds();
  std::printf("end-to-end wall time: %.3f s\n", total_seconds);
  // Machine-readable record (CI uploads it next to BENCH_micro.json).
  if (const char* json_path = std::getenv("HDLDP_BENCH_JSON")) {
    WriteJson(json_path, total_seconds, users, repeats);
  }
  return 0;
}
