// Frequency-estimation extension benchmark (paper Section V-C, experiment
// A4 in DESIGN.md): raw vs. HDR4ME-re-calibrated frequency MSE across
// mechanisms, category cardinalities and budgets, on Zipf-distributed
// categorical data.
//
// The expanded one-hot space has sum_j v_j entries, each perturbed at
// eps/(2m): exactly the high-dimensional regime HDR4ME targets.

#include <algorithm>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "framework/experiment_runner.h"
#include "freq/encoding.h"
#include "freq/pipeline.h"
#include "mech/registry.h"
#include "protocol/wire.h"

namespace {

constexpr std::size_t kPaperUsers = 100000;
constexpr std::size_t kDims = 20;  // Categorical dimensions.

// Wire bytes of one representative report under each encoding, so the
// per-encoding cells record communication cost next to wall time and
// error. Worst-case representative (last m dimensions, largest bucket
// value): every varint is at its widest, so the figure is an upper
// bound on any real report of the same geometry.
std::size_t NumericFreqReportBytes(std::size_t m, std::size_t cardinality) {
  hdldp::protocol::UserReport report;
  for (std::size_t j = kDims - m; j < kDims; ++j) {
    for (std::size_t k = 0; k < cardinality; ++k) {
      report.entries.push_back(
          {.dimension = static_cast<std::uint32_t>(j * cardinality + k),
           .value = 0.5});
    }
  }
  return hdldp::protocol::EncodeReport(report).value().size();
}

std::size_t OueReportBytes(std::size_t m, std::size_t cardinality) {
  hdldp::protocol::OuePayload payload;
  payload.num_dims = kDims;
  for (std::size_t j = kDims - m; j < kDims; ++j) {
    hdldp::protocol::OuePayloadDim dim;
    dim.dimension = static_cast<std::uint32_t>(j);
    dim.cardinality = static_cast<std::uint32_t>(cardinality);
    dim.bits.assign((cardinality + 7) / 8, 0);  // content never changes size
    payload.dims.push_back(dim);
  }
  return hdldp::protocol::EncodeOuePayload(payload).value().size();
}

std::size_t OlhReportBytes(std::size_t m, std::uint32_t g) {
  hdldp::protocol::OlhPayload payload;
  payload.num_dims = kDims;
  for (std::size_t j = kDims - m; j < kDims; ++j) {
    payload.dims.push_back(
        {.dimension = static_cast<std::uint32_t>(j),
         .g = g,
         .hash_seed = 0xFFFFFFFFu,
         .value = g - 1});
  }
  return hdldp::protocol::EncodeOlhPayload(payload).value().size();
}

void RunCardinality(std::size_t users, std::size_t cardinality,
                    std::size_t repeats, hdldp::bench::JsonRecord* record) {
  const auto schema = hdldp::freq::CategoricalSchema::Create(
                          std::vector<std::size_t>(kDims, cardinality))
                          .value();
  hdldp::Rng data_rng(0xF8E0 + cardinality);
  const auto dataset =
      hdldp::freq::GenerateCategorical(users, schema, 1.2, &data_rng).value();
  std::printf("--- d=%zu categorical dims x v=%zu categories "
              "(%zu expanded entries), Zipf(1.2) ---\n",
              kDims, cardinality, schema.total_entries());
  std::printf("%-12s %8s %14s %14s %10s\n", "mechanism", "eps", "raw-MSE",
              "HDR4ME-MSE", "gain");
  for (const auto mech_name : {"laplace", "piecewise", "square_wave"}) {
    for (const double eps : {0.5, 1.0, 2.0}) {
      double raw = 0.0;
      double recal = 0.0;
      const hdldp::bench::Stopwatch cell_watch;
      // Trial-parallel repeats, reduced in trial order. Each trial also
      // streams its chunks over the shared pool (the nesting-safe
      // ParallelFor), so HDLDP_BENCH_THREADS bounds total concurrency
      // without changing any estimate.
      hdldp::framework::ExperimentRunnerOptions runner_options;
      runner_options.seed = 0xF8E000 + cardinality +
                            static_cast<std::uint64_t>(eps * 1000.0);
      runner_options.max_workers = hdldp::bench::MaxWorkers();
      hdldp::framework::ExperimentRunner runner(runner_options);
      runner.ForEachTrial(
          repeats,
          [&](const hdldp::framework::TrialContext& ctx) {
            hdldp::freq::FrequencyOptions opts;
            opts.total_epsilon = eps;
            opts.seed = ctx.seed;
            opts.num_threads = hdldp::bench::MaxWorkers();
            opts.clip_and_normalize = true;
            opts.hdr4me.regularizer = hdldp::hdr4me::Regularizer::kL1;
            const auto result =
                hdldp::freq::RunFrequencyEstimation(
                    dataset, hdldp::mech::MakeMechanism(mech_name).value(),
                    opts)
                    .value();
            return std::pair<double, double>(result.mse_raw,
                                             result.mse_recalibrated);
          },
          [&](const std::pair<double, double>& mses) {
            raw += mses.first;
            recal += mses.second;
          });
      raw /= static_cast<double>(repeats);
      recal /= static_cast<double>(repeats);
      std::printf("%-12s %8g %14.5g %14.5g %9.2fx\n", mech_name, eps, raw,
                  recal, raw / recal);
      record->NewCell();
      record->Cell("cardinality", cardinality);
      record->Cell("mechanism", std::string(mech_name));
      record->Cell("eps", eps);
      record->Cell("seconds", cell_watch.Seconds());
      record->Cell("mse_raw", raw);
      record->Cell("mse_recalibrated", recal);
    }
  }
  std::printf("\n");
}

// Sampled-path (m < d) wall-time cells: the kV2Lanes per-user layout vs
// the kV3Batched cross-user layout, single-core so the before/after
// cells are comparable across runners. m spans the small-payload regime
// the batched layout targets (m = 1: one dimension's one-hot entries per
// user) and a mid-size m; both cardinalities are recorded because the
// small-cardinality cells are overhead-bound (where batching wins most)
// while the large ones are perturbation-bound.
void RunSampledPath(std::size_t users, std::size_t repeats,
                    hdldp::bench::JsonRecord* record) {
  for (const std::size_t cardinality : {4u, 16u}) {
    const auto schema = hdldp::freq::CategoricalSchema::Create(
                            std::vector<std::size_t>(kDims, cardinality))
                            .value();
    hdldp::Rng data_rng(0xF8E0 + cardinality);
    const auto dataset =
        hdldp::freq::GenerateCategorical(users, schema, 1.2, &data_rng)
            .value();
    std::printf("--- sampled path, v=%zu categories (single core) ---\n",
                cardinality);
    std::printf("%-12s %4s %7s %12s %10s\n", "mechanism", "m", "scheme",
                "wall (s)", "raw-MSE");
    for (const auto mech_name : {"laplace", "piecewise"}) {
      for (const std::size_t m : {1u, 5u}) {
        double seconds_by_scheme[2] = {0.0, 0.0};
        for (const auto& [scheme, scheme_name] :
             {std::pair{hdldp::SeedScheme::kV2Lanes, "v2"},
              std::pair{hdldp::SeedScheme::kV3Batched, "v3"}}) {
          hdldp::freq::FrequencyOptions opts;
          opts.total_epsilon = 1.0;
          opts.report_dims = m;
          opts.seed = 0xF8E;
          opts.seed_scheme = scheme;
          opts.num_threads = 1;
          // Best-of-repeats: single runs of a few milliseconds are too
          // noisy on shared runners for before/after cells.
          double mse_raw = 0.0;
          double seconds = std::numeric_limits<double>::infinity();
          for (std::size_t r = 0; r < repeats; ++r) {
            const hdldp::bench::Stopwatch watch;
            const auto result =
                hdldp::freq::RunFrequencyEstimation(
                    dataset, hdldp::mech::MakeMechanism(mech_name).value(),
                    opts)
                    .value();
            seconds = std::min(seconds, watch.Seconds());
            mse_raw = result.mse_raw;
          }
          seconds_by_scheme[scheme == hdldp::SeedScheme::kV3Batched] =
              seconds;
          std::printf("%-12s %4zu %7s %12.5f %10.4g\n", mech_name, m,
                      scheme_name, seconds, mse_raw);
          record->NewCell();
          record->Cell("kind", std::string("freq_sampled"));
          record->Cell("cardinality", cardinality);
          record->Cell("mechanism", std::string(mech_name));
          record->Cell("report_dims", m);
          record->Cell("scheme", std::string(scheme_name));
          record->Cell("encoding", std::string("sampled"));
          record->Cell("sampled", std::size_t{1});
          record->Cell("seconds", seconds);
          record->Cell("mse_raw", mse_raw);
          record->Cell("bytes_per_user", NumericFreqReportBytes(m, cardinality));
        }
        std::printf("%-12s %4zu v2/v3 speedup: %.2fx\n", mech_name, m,
                    seconds_by_scheme[0] / seconds_by_scheme[1]);
        // Frequency-oracle encodings at the same geometry: one
        // randomized categorical answer per sampled dimension instead
        // of cardinality perturbed entries, O(1) draws per dimension.
        // No value mechanism is involved, so the oracle cells pair with
        // the numeric cells of either mechanism above; emit them once.
        if (std::string(mech_name) != "laplace") continue;
        for (const auto encoding : {hdldp::protocol::ReportEncoding::kOue,
                                    hdldp::protocol::ReportEncoding::kOlh}) {
          hdldp::freq::FrequencyOptions opts;
          opts.total_epsilon = 1.0;
          opts.report_dims = m;
          opts.seed = 0xF8E;
          opts.encoding = encoding;
          opts.num_threads = 1;
          double mse_raw = 0.0;
          std::size_t bytes = 0;
          double seconds = std::numeric_limits<double>::infinity();
          for (std::size_t r = 0; r < repeats; ++r) {
            const hdldp::bench::Stopwatch watch;
            const auto result =
                hdldp::freq::RunFrequencyEstimation(dataset, nullptr, opts)
                    .value();
            seconds = std::min(seconds, watch.Seconds());
            mse_raw = result.mse_raw;
          }
          const char* encoding_name =
              hdldp::protocol::ReportEncodingName(encoding);
          if (encoding == hdldp::protocol::ReportEncoding::kOue) {
            bytes = OueReportBytes(m, cardinality);
          } else {
            const auto olh =
                hdldp::freq::OlhParams::FromEpsilon(
                    opts.total_epsilon / static_cast<double>(m))
                    .value();
            bytes = OlhReportBytes(m, olh.g);
          }
          std::printf("%-12s %4zu %7s %12.5f %10.4g %6zu B/user "
                      "(vs v3: %.2fx)\n",
                      encoding_name, m, "compact", seconds, mse_raw, bytes,
                      seconds_by_scheme[1] / seconds);
          record->NewCell();
          record->Cell("kind", std::string("freq_sampled"));
          record->Cell("cardinality", cardinality);
          record->Cell("mechanism", std::string("none"));
          record->Cell("report_dims", m);
          // Oracle draws follow the frozen "compact encodings" scalar
          // contract (common/rng_lanes.h), not a SeedScheme lane layout.
          record->Cell("scheme", std::string("compact"));
          record->Cell("encoding", std::string(encoding_name));
          record->Cell("sampled", std::size_t{1});
          record->Cell("seconds", seconds);
          record->Cell("mse_raw", mse_raw);
          record->Cell("bytes_per_user", bytes);
        }
      }
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  hdldp::bench::PrintHeader(
      "Section V-C extension: high-dimensional frequency estimation",
      "n=100,000 users, 20 categorical dims, Zipf(1.2) categories");
  const std::size_t users = hdldp::bench::ScaledUsers(kPaperUsers);
  const std::size_t repeats = hdldp::bench::Repeats();
  hdldp::bench::JsonRecord record("bench_freq");
  record.Meta("users", users);
  record.Meta("repeats", repeats);
  const hdldp::bench::Stopwatch watch;
  for (const std::size_t cardinality : {4u, 16u}) {
    RunCardinality(users, cardinality, repeats, &record);
  }
  RunSampledPath(users, std::max<std::size_t>(repeats, 3), &record);
  const double total_seconds = watch.Seconds();
  std::printf("end-to-end wall time: %.3f s\n", total_seconds);
  // Machine-readable record (CI uploads it next to BENCH_micro.json).
  record.Meta("wall_seconds", total_seconds);
  record.WriteIfRequested();
  return 0;
}
