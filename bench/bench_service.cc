// Sustained-throughput benchmark of the online aggregation service:
// wire-format ingestion -> dedup/budget/fold -> rolling window publish,
// across the ingestion modes that matter operationally — single-threaded
// replay, multi-worker backpressure, multi-worker shedding under
// deliberate overload, and replay with periodic snapshots.
//
// Reported per mode: end-to-end reports/sec (submit through Drain),
// accepted/shed split, published window count, and the mean
// seal-and-publish latency per watermark advance (estimate staleness).
// Contributes BENCH_service.json to the BENCH_records CI artifact.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "service/aggregation_service.h"
#include "service/report_stream.h"

namespace {

using hdldp::Status;
using hdldp::StatusCode;
using hdldp::bench::JsonRecord;
using hdldp::bench::Stopwatch;
using hdldp::service::AggregationService;
using hdldp::service::OverloadPolicy;
using hdldp::service::ReportStream;
using hdldp::service::ReportStreamOptions;
using hdldp::service::ServiceOptions;
using hdldp::service::ServiceStats;

struct ModeResult {
  double seconds = 0;
  double publish_seconds = 0;   // total time inside AdvanceWatermark/Drain
  std::uint64_t publishes = 0;  // watermark advances + the final drain
  ServiceStats stats;
};

ReportStreamOptions StreamOptions(std::uint64_t reports,
                                  hdldp::protocol::ReportEncoding encoding) {
  ReportStreamOptions options;
  options.num_reports = reports;
  options.num_dims = 16;
  options.report_dims = 4;
  options.num_tenants = 64;
  options.seed = 99;
  options.reports_per_tick = reports / 20 == 0 ? 1 : reports / 20;
  options.encoding = encoding;
  // The frequency oracles are categorical: same question count and
  // sampling rate as the mean workload, 4 categories per question.
  if (encoding == hdldp::protocol::ReportEncoding::kOue ||
      encoding == hdldp::protocol::ReportEncoding::kOlh) {
    options.workload = hdldp::service::StreamWorkload::kFreq;
    options.num_categories = 4;
  }
  return options;
}

Status RunMode(const ReportStreamOptions& stream_options,
               std::size_t workers, OverloadPolicy overload,
               std::size_t queue_capacity, std::uint64_t snapshot_every,
               const std::string& checkpoint, ModeResult* result) {
  HDLDP_ASSIGN_OR_RETURN(ReportStream stream,
                         ReportStream::Create(stream_options));
  ServiceOptions options;
  options.num_dims = stream.service_dims();
  options.domain_map = stream.domain_map();
  options.expected_entries = stream.expected_entries();
  options.output_lo = stream.output_lo();
  options.output_hi = stream.output_hi();
  options.window.width = 2;
  options.num_workers = workers;
  options.overload = overload;
  options.queue_capacity = queue_capacity;
  options.checkpoint_path = checkpoint;
  options.digest_tag = "bench_service";
  // No-op for the numeric payloads; configures the matching decoder for
  // the compact encodings (the stream already reports the decoded
  // data-domain geometry through service_dims/output_lo/output_hi).
  options.codec = stream.CodecOptions();
  HDLDP_ASSIGN_OR_RETURN(std::unique_ptr<AggregationService> service,
                         AggregationService::Create(options));

  const std::uint64_t per_tick = stream_options.reports_per_tick;
  const Stopwatch total;
  std::vector<std::uint8_t> envelope;
  std::uint64_t last_tick = 0;
  for (;;) {
    bool done = false;
    HDLDP_RETURN_NOT_OK(stream.Next(&envelope, &done));
    if (done) break;
    const Status status = service->Submit(envelope);
    if (!status.ok() && status.code() != StatusCode::kUnavailable) {
      return status;
    }
    const std::uint64_t tick = stream.position() / per_tick;
    if (tick > last_tick) {
      last_tick = tick;
      const Stopwatch publish;
      HDLDP_RETURN_NOT_OK(service->AdvanceWatermark(tick));
      result->publish_seconds += publish.Seconds();
      ++result->publishes;
    }
    if (snapshot_every > 0 && stream.position() % snapshot_every == 0) {
      HDLDP_RETURN_NOT_OK(service->SaveSnapshot(stream.position()));
    }
  }
  {
    const Stopwatch publish;
    HDLDP_RETURN_NOT_OK(service->Drain());
    result->publish_seconds += publish.Seconds();
    ++result->publishes;
  }
  result->seconds = total.Seconds();
  HDLDP_RETURN_NOT_OK(service->VerifyReconciliation());
  result->stats = service->Stats();
  if (!checkpoint.empty()) {
    HDLDP_RETURN_NOT_OK(service->Finish());
  }
  return Status::OK();
}

}  // namespace

int main() {
  const std::uint64_t reports =
      static_cast<std::uint64_t>(hdldp::bench::ScaledUsers(500'000));
  hdldp::bench::PrintHeader(
      "online aggregation service: sustained ingestion throughput",
      "500k wire reports, d=16 m=4, 64 tenants, 20 ticks, width-2 windows");

  struct Mode {
    const char* name;
    std::size_t workers;
    OverloadPolicy overload;
    std::size_t queue_capacity;
    std::uint64_t snapshot_every;
    hdldp::protocol::ReportEncoding encoding;
  };
  const std::string checkpoint = "/tmp/hdldp_bench_service_ckpt";
  constexpr auto kDense = hdldp::protocol::ReportEncoding::kDense;
  const Mode modes[] = {
      {"replay-1w", 1, OverloadPolicy::kBlock, 4096, 0, kDense},
      {"serve-4w-block", 4, OverloadPolicy::kBlock, 4096, 0, kDense},
      {"serve-4w-shed-overload", 4, OverloadPolicy::kShed, 64, 0, kDense},
      {"replay-1w-snapshots", 1, OverloadPolicy::kBlock, 4096, 0 /*below*/,
       kDense},
      // Compact-encoding replay: same single-worker ingestion loop, but
      // the reports arrive as 1-bit Hadamard mean payloads / OUE / OLH
      // frequency-oracle payloads and flow through the PayloadCodec.
      // bytes/report next to reports/sec shows the communication-vs-CPU
      // trade against the dense replay baseline.
      {"replay-1w-hadamard1", 1, OverloadPolicy::kBlock, 4096, 0,
       hdldp::protocol::ReportEncoding::kHadamard1},
      {"replay-1w-oue", 1, OverloadPolicy::kBlock, 4096, 0,
       hdldp::protocol::ReportEncoding::kOue},
      {"replay-1w-olh", 1, OverloadPolicy::kBlock, 4096, 0,
       hdldp::protocol::ReportEncoding::kOlh},
  };

  JsonRecord record("bench_service");
  record.Meta("reports", static_cast<std::size_t>(reports));
  record.Meta("dims", std::size_t{16});
  record.Meta("report_dims", std::size_t{4});
  record.Meta("tenants", std::size_t{64});

  std::printf("%-24s %12s %12s %12s %10s %12s %8s\n", "mode", "reports/s",
              "accepted", "shed", "windows", "publish_ms", "B/rpt");
  const Stopwatch wall;
  for (const Mode& mode : modes) {
    const bool snapshots = std::string(mode.name) == "replay-1w-snapshots";
    ModeResult result;
    const Status status = RunMode(
        StreamOptions(reports, mode.encoding), mode.workers, mode.overload,
        mode.queue_capacity, snapshots ? reports / 10 : 0,
        snapshots ? checkpoint : std::string(), &result);
    if (!status.ok()) {
      std::fprintf(stderr, "bench_service %s: %s\n", mode.name,
                   status.ToString().c_str());
      return 1;
    }
    const double rate =
        result.seconds > 0 ? static_cast<double>(reports) / result.seconds
                           : 0.0;
    const double publish_ms =
        result.publishes > 0
            ? 1e3 * result.publish_seconds /
                  static_cast<double>(result.publishes)
            : 0.0;
    const double bytes_per_report =
        result.stats.accepted > 0
            ? static_cast<double>(result.stats.accepted_payload_bytes) /
                  static_cast<double>(result.stats.accepted)
            : 0.0;
    std::printf("%-24s %12.0f %12llu %12llu %10llu %12.3f %8.1f\n",
                mode.name, rate,
                static_cast<unsigned long long>(result.stats.accepted),
                static_cast<unsigned long long>(result.stats.shed_queue_full),
                static_cast<unsigned long long>(
                    result.stats.published_windows),
                publish_ms, bytes_per_report);
    record.NewCell();
    record.Cell("mode", mode.name);
    record.Cell("workers", mode.workers);
    record.Cell("encoding", std::string(hdldp::protocol::ReportEncodingName(
                                mode.encoding)));
    record.Cell("reports_per_sec", rate);
    record.Cell("seconds", result.seconds);
    record.Cell("accepted", static_cast<std::size_t>(result.stats.accepted));
    record.Cell("shed_queue_full",
                static_cast<std::size_t>(result.stats.shed_queue_full));
    record.Cell("published_windows",
                static_cast<std::size_t>(result.stats.published_windows));
    record.Cell("publish_latency_ms", publish_ms);
    record.Cell("bytes_per_report", bytes_per_report);
  }
  record.Meta("wall_seconds", wall.Seconds());
  record.WriteIfRequested();
  return 0;
}
