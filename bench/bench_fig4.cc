// Reproduces Figure 4 (a)-(l): MSE vs. privacy budget for Laplace,
// Piecewise and Square wave under naive aggregation, HDR4ME-L1 and
// HDR4ME-L2, on the four Section VI datasets:
//
//   (a-c) Gaussian  n=100,000 d=100     (d-f) Poisson  n=150,000 d=300
//   (g-i) Uniform   n=120,000 d=500     (j-l) COV-19*  n=150,000 d=750
//
// (*correlated surrogate, see DESIGN.md). Every user reports all d
// dimensions (the paper's stress setting), eps is partitioned as eps/d.
// Budget grids follow the paper: {0.1,0.2,0.4,0.8,1.6,3.2} for Laplace
// and Piecewise, {0.1,10,100,500,1000,5000} for Square wave.

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "data/generators.h"
#include "framework/deviation_model.h"
#include "framework/experiment_runner.h"
#include "framework/value_distribution.h"
#include "hdr4me/recalibrate.h"
#include "mech/registry.h"
#include "protocol/metrics.h"
#include "protocol/pipeline.h"

namespace {

using hdldp::data::Dataset;
using hdldp::framework::GaussianDeviation;
using hdldp::framework::ModelDeviation;
using hdldp::framework::ValueDistribution;

struct DatasetConfig {
  const char* label;
  const char* subfigures;
  std::size_t paper_users;
  std::size_t dims;
  std::function<Dataset(std::size_t, hdldp::Rng*)> make;
};

std::vector<DatasetConfig> Configs() {
  return {
      {"Gaussian", "(a)-(c)", 100000, 100,
       [](std::size_t n, hdldp::Rng* rng) {
         hdldp::data::GaussianSpec spec;
         spec.num_users = n;
         spec.num_dims = 100;
         return hdldp::data::GenerateGaussian(spec, rng).value();
       }},
      {"Poisson", "(d)-(f)", 150000, 300,
       [](std::size_t n, hdldp::Rng* rng) {
         hdldp::data::PoissonSpec spec;
         spec.num_users = n;
         spec.num_dims = 300;
         return hdldp::data::GeneratePoisson(spec, rng).value();
       }},
      {"Uniform", "(g)-(i)", 120000, 500,
       [](std::size_t n, hdldp::Rng* rng) {
         return hdldp::data::GenerateUniform({.num_users = n, .num_dims = 500},
                                             rng)
             .value();
       }},
      {"COV-19*", "(j)-(l)", 150000, 750,
       [](std::size_t n, hdldp::Rng* rng) {
         hdldp::data::CorrelatedSpec spec;
         spec.num_users = n;
         spec.num_dims = 750;
         return hdldp::data::GenerateCorrelated(spec, rng).value();
       }},
  };
}

// Per-dimension empirical value distributions (Lemma 3 inputs), from a
// row subsample.
std::vector<ValueDistribution> PerDimDistributions(const Dataset& data) {
  const std::size_t rows = std::min<std::size_t>(data.num_users(), 2000);
  std::vector<ValueDistribution> dists;
  dists.reserve(data.num_dims());
  std::vector<double> column(rows);
  for (std::size_t j = 0; j < data.num_dims(); ++j) {
    for (std::size_t i = 0; i < rows; ++i) column[i] = data.At(i, j);
    dists.push_back(ValueDistribution::FromSamples(column, 16).value());
  }
  return dists;
}

void RunMechanismOnDataset(const DatasetConfig& config, const Dataset& data,
                           const std::vector<ValueDistribution>& dists,
                           const std::string& mech_name,
                           const std::vector<double>& eps_grid,
                           std::size_t repeats) {
  const auto mechanism = hdldp::mech::MakeMechanism(mech_name).value();
  std::printf("--- %s on %s (n=%zu, d=%zu, m=d) ---\n", mech_name.c_str(),
              config.label, data.num_users(), data.num_dims());
  std::printf("%10s %14s %14s %14s\n", "eps", "naive-MSE", "L1-MSE",
              "L2-MSE");
  const auto true_mean = data.TrueMean();
  for (const double eps : eps_grid) {
    const double eps_per_dim = eps / static_cast<double>(data.num_dims());
    // Deviation models are repeat-independent: r_j = n exactly when m = d.
    std::vector<GaussianDeviation> deviations;
    deviations.reserve(data.num_dims());
    for (std::size_t j = 0; j < data.num_dims(); ++j) {
      deviations.push_back(
          ModelDeviation(*mechanism, eps_per_dim, dists[j],
                         static_cast<double>(data.num_users()))
              .value()
              .deviation);
    }
    double naive = 0.0;
    double l1 = 0.0;
    double l2 = 0.0;
    // One repeat per trial, parallel on the shared pool; sums accumulate
    // in trial order, so the printed MSEs are identical for any
    // HDLDP_BENCH_THREADS.
    struct RepMse {
      double naive = 0.0;
      double l1 = 0.0;
      double l2 = 0.0;
    };
    hdldp::framework::ExperimentRunnerOptions runner_options;
    runner_options.seed = 0xF16'4000 + mech_name.size() * 31 +
                          static_cast<std::uint64_t>(eps * 1000.0);
    runner_options.max_workers = hdldp::bench::MaxWorkers();
    hdldp::framework::ExperimentRunner runner(runner_options);
    runner.ForEachTrial(
        repeats,
        [&](const hdldp::framework::TrialContext& ctx) {
          hdldp::protocol::PipelineOptions opts;
          opts.total_epsilon = eps;
          opts.report_dims = 0;  // All dimensions.
          opts.seed = ctx.seed;
          const auto run =
              hdldp::protocol::RunMeanEstimation(data, mechanism, opts)
                  .value();
          RepMse rep;
          rep.naive = run.mse;
          hdldp::hdr4me::Hdr4meOptions h;
          h.regularizer = hdldp::hdr4me::Regularizer::kL1;
          const auto r1 =
              hdldp::hdr4me::Recalibrate(run.estimated_mean, deviations, h)
                  .value();
          rep.l1 = hdldp::protocol::MeanSquaredError(r1.enhanced_mean,
                                                     true_mean)
                       .value();
          h.regularizer = hdldp::hdr4me::Regularizer::kL2;
          const auto r2 =
              hdldp::hdr4me::Recalibrate(run.estimated_mean, deviations, h)
                  .value();
          rep.l2 = hdldp::protocol::MeanSquaredError(r2.enhanced_mean,
                                                     true_mean)
                       .value();
          return rep;
        },
        [&](const RepMse& rep) {
          naive += rep.naive;
          l1 += rep.l1;
          l2 += rep.l2;
        });
    const double denom = static_cast<double>(repeats);
    std::printf("%10g %14.5g %14.5g %14.5g\n", eps, naive / denom, l1 / denom,
                l2 / denom);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  hdldp::bench::PrintHeader(
      "Figure 4: MSE vs. privacy budget on four datasets",
      "100 repeats; Gaussian/Poisson/Uniform/COV-19 at paper populations");
  const std::vector<double> standard_grid = {0.1, 0.2, 0.4, 0.8, 1.6, 3.2};
  const std::vector<double> square_grid = {0.1, 10, 100, 500, 1000, 5000};
  const std::size_t repeats = hdldp::bench::Repeats();

  for (const auto& config : Configs()) {
    const std::size_t users = hdldp::bench::ScaledUsers(config.paper_users);
    hdldp::Rng data_rng(0xDA7A + config.dims);
    const Dataset data = config.make(users, &data_rng);
    const auto dists = PerDimDistributions(data);
    std::printf("=== Fig. 4%s: %s dataset ===\n\n", config.subfigures,
                config.label);
    hdldp::bench::Stopwatch watch;
    RunMechanismOnDataset(config, data, dists, "laplace", standard_grid,
                          repeats);
    RunMechanismOnDataset(config, data, dists, "piecewise", standard_grid,
                          repeats);
    RunMechanismOnDataset(config, data, dists, "square_wave", square_grid,
                          repeats);
    std::printf("[%s done in %.1fs]\n\n", config.label, watch.Seconds());
  }
  return 0;
}
