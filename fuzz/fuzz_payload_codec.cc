// Fuzz harness for service::PayloadCodec::Decode — the first thing the
// aggregation service does with an authenticated tenant's payload
// bytes, and therefore the hottest attack surface in the serving path.
// One codec per compact encoding (OUE, OLH, Hadamard1), geometry
// matching fuzz/seedgen.cc so the seed corpus decodes successfully.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "service/payload_codec.h"

namespace {

const std::vector<hdldp::service::PayloadCodec>& Codecs() {
  static const std::vector<hdldp::service::PayloadCodec> codecs = [] {
    using hdldp::protocol::ReportEncoding;
    using hdldp::service::PayloadCodec;
    using hdldp::service::PayloadCodecOptions;
    std::vector<PayloadCodec> out;
    for (const ReportEncoding encoding :
         {ReportEncoding::kOue, ReportEncoding::kOlh,
          ReportEncoding::kHadamard1}) {
      PayloadCodecOptions options;
      options.encoding = encoding;
      options.epsilon = 1.0;
      options.report_dims = 2;
      if (encoding == ReportEncoding::kHadamard1) {
        options.num_dims = 16;
      } else {
        options.num_questions = 4;
        options.num_categories = 3;
      }
      auto codec = PayloadCodec::Create(options);
      if (codec.ok()) out.push_back(std::move(codec).value());
    }
    return out;
  }();
  return codecs;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::uint8_t> bytes(data, size);
  for (const hdldp::service::PayloadCodec& codec : Codecs()) {
    (void)codec.Decode(bytes);
  }
  return 0;
}
