// Fuzz harness for the shard reader: the input bytes become a part file
// in a scratch shard directory, which ShardFileSource then opens and
// reads end to end. Header validation, size/geometry checks, the CRC
// trailer and the mmap window path must all hold up against arbitrary
// bytes — a torn or hostile part file is a typed error, never UB.

#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "data/chunk_source.h"
#include "data/shard.h"

namespace {

const std::string& ShardDir() {
  static const std::string dir = [] {
    char tmpl[] = "/tmp/hdldp_fuzz_shard_XXXXXX";
    const char* made = ::mkdtemp(tmpl);
    return std::string(made != nullptr ? made : ".");
  }();
  return dir;
}

bool WriteInput(const std::string& path, const std::uint8_t* data,
                std::size_t size) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = size == 0 || std::fwrite(data, 1, size, f) == size;
  return std::fclose(f) == 0 && ok;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string part = ShardDir() + "/part-00000.hds";
  if (!WriteInput(part, data, size)) return 0;
  auto source = hdldp::data::ShardFileSource::Open(ShardDir());
  if (source.ok()) {
    // A header that passes Open bounds num_chunks by the actual file
    // size, so this loop is O(input bytes).
    hdldp::data::ChunkBuffer buffer;
    for (std::size_t c = 0; c < source.value().num_chunks(); ++c) {
      (void)source.value().Chunk(c, &buffer);
    }
  }
  return 0;
}
