// Fuzz harness for the wire codec: envelope framing plus all four
// payload kinds (dense v1, OUE v2, OLH v3, Hadamard1 v4). The decoders
// promise that arbitrary bytes produce a typed error or a valid value —
// never UB, a wild allocation, or a crash; this harness is that promise
// under test.

#include <cstddef>
#include <cstdint>
#include <span>

#include "protocol/wire.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  namespace proto = hdldp::protocol;
  const std::span<const std::uint8_t> bytes(data, size);
  if (auto envelope = proto::DecodeEnvelope(bytes); envelope.ok()) {
    // The framed payload is attacker bytes too: the service hands it to
    // the kind-specific decoder, so exercise every one of them.
    const std::span<const std::uint8_t> payload(envelope.value().payload);
    (void)proto::PayloadEncoding(payload);
    (void)proto::DecodeReport(payload);
    (void)proto::DecodeOuePayload(payload);
    (void)proto::DecodeOlhPayload(payload);
    (void)proto::DecodeHadamard1Payload(payload);
  }
  // The raw input doubles as a bare payload (no envelope framing).
  (void)proto::PayloadEncoding(bytes);
  (void)proto::DecodeReport(bytes);
  (void)proto::DecodeOuePayload(bytes);
  (void)proto::DecodeOlhPayload(bytes);
  (void)proto::DecodeHadamard1Payload(bytes);
  return 0;
}
