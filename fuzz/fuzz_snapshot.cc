// Fuzz harness for the checkpoint codec: the input bytes become a
// snapshot file which SnapshotFile::Open parses (header + digest
// validation, tolerant record loading, compaction rewrite). Arbitrary
// bytes must yield a typed error or a clean open — torn tails and
// hostile record frames included.
//
// The digest below must match fuzz/seedgen.cc so the seed corpus
// reaches the record parser instead of dying at the digest gate.

#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "protocol/snapshot.h"

namespace {

const std::string& SnapshotPath() {
  static const std::string path = [] {
    char tmpl[] = "/tmp/hdldp_fuzz_snap_XXXXXX";
    const char* made = ::mkdtemp(tmpl);
    return std::string(made != nullptr ? made : ".") + "/ckpt";
  }();
  return path;
}

const std::vector<unsigned char>& FuzzDigest() {
  static const std::vector<unsigned char> digest = [] {
    hdldp::protocol::RunDigest d;
    d.AddString("hdldp-fuzz-snapshot");
    d.AddU64(42);
    return d.bytes;
  }();
  return digest;
}

bool WriteInput(const std::string& path, const std::uint8_t* data,
                std::size_t size) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = size == 0 || std::fwrite(data, 1, size, f) == size;
  return std::fclose(f) == 0 && ok;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (!WriteInput(SnapshotPath(), data, size)) return 0;
  auto file = hdldp::protocol::SnapshotFile::Open(SnapshotPath(),
                                                  FuzzDigest());
  if (file.ok()) {
    for (std::size_t g = 0; g < 64; ++g) {
      (void)file.value().Load(g);
    }
    (void)file.value().Close();
  }
  return 0;
}
