// Standalone driver for the fuzz harnesses: a main() that replays
// corpus inputs through LLVMFuzzerTestOneInput without libFuzzer, so
// the harnesses build and run under ANY toolchain (GCC included) and in
// every sanitizer preset. This is what the FuzzCorpus.* ctest cases
// run: every checked-in regression input must stay crash-free in every
// preset.
//
// Usage: fuzz_<target>_replay [--mutate=N] [--seed=S] path...
//
// Each path is a corpus file or a directory of corpus files (sorted by
// name, so runs are deterministic). With --mutate=N, every input
// additionally spawns N deterministic SplitMix64-derived mutants
// (byte flips, truncations, insertions, value smashes) — a bounded,
// seed-replayable smoke fuzz that needs no libFuzzer. A crash surfaces
// as the process dying (assert/sanitizer abort); clean runs exit 0.
// Replaying an empty corpus is an error: a missing corpus directory
// must never read as a green fuzz regression suite.

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

bool ReadFileBytes(const std::string& path, std::vector<std::uint8_t>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return true;
}

// Expands a path into the corpus files it names: a regular file is
// itself, a directory contributes its regular files sorted by name.
void CollectInputs(const std::string& path, std::vector<std::string>* files) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    std::fprintf(stderr, "fuzz replay: cannot stat %s\n", path.c_str());
    return;
  }
  if (!S_ISDIR(st.st_mode)) {
    files->push_back(path);
    return;
  }
  std::vector<std::string> names;
  DIR* d = ::opendir(path.c_str());
  if (d == nullptr) return;
  while (const dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(name);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    const std::string full = path + "/" + name;
    if (::stat(full.c_str(), &st) == 0 && S_ISREG(st.st_mode)) {
      files->push_back(full);
    }
  }
}

// One deterministic mutant of `base`. The mutation menu is deliberately
// crude — the point is cheap regression smoke at ctest time, not deep
// exploration (CI's libFuzzer job does that).
std::vector<std::uint8_t> Mutate(const std::vector<std::uint8_t>& base,
                                 std::uint64_t* rng) {
  std::vector<std::uint8_t> out = base;
  switch (hdldp::SplitMix64(rng) & 3) {
    case 0:  // flip one byte
      if (!out.empty()) {
        out[hdldp::SplitMix64(rng) % out.size()] ^=
            static_cast<std::uint8_t>(hdldp::SplitMix64(rng) | 1);
      }
      break;
    case 1:  // truncate
      if (!out.empty()) {
        out.resize(hdldp::SplitMix64(rng) % out.size());
      }
      break;
    case 2:  // insert a byte
      out.insert(out.begin() +
                     static_cast<std::ptrdiff_t>(
                         hdldp::SplitMix64(rng) % (out.size() + 1)),
                 static_cast<std::uint8_t>(hdldp::SplitMix64(rng)));
      break;
    default:  // smash a byte to an extreme (0x00/0xFF bias length fields)
      if (!out.empty()) {
        out[hdldp::SplitMix64(rng) % out.size()] =
            (hdldp::SplitMix64(rng) & 1) ? 0xFF : 0x00;
      }
      break;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t mutants = 0;
  std::uint64_t seed = 1;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--mutate=", 0) == 0) {
      mutants = std::strtoull(arg.c_str() + 9, nullptr, 10);
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else {
      CollectInputs(arg, &inputs);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr,
                 "fuzz replay: no corpus inputs found (usage: %s "
                 "[--mutate=N] [--seed=S] path...)\n",
                 argv[0]);
    return 2;
  }
  std::uint64_t ran = 0;
  std::uint64_t ran_mutants = 0;
  for (std::size_t f = 0; f < inputs.size(); ++f) {
    std::vector<std::uint8_t> bytes;
    if (!ReadFileBytes(inputs[f], &bytes)) {
      std::fprintf(stderr, "fuzz replay: cannot read %s\n",
                   inputs[f].c_str());
      return 2;
    }
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
    ++ran;
    // Mutant stream keyed by (seed, file index): stable under corpus
    // growth, replayable from the command line alone.
    std::uint64_t rng = seed ^ (0x9e3779b97f4a7c15ULL * (f + 1));
    for (std::uint64_t m = 0; m < mutants; ++m) {
      const std::vector<std::uint8_t> mutant = Mutate(bytes, &rng);
      LLVMFuzzerTestOneInput(mutant.data(), mutant.size());
      ++ran_mutants;
    }
  }
  std::printf("fuzz replay: %llu corpus inputs + %llu mutants, no crashes\n",
              static_cast<unsigned long long>(ran),
              static_cast<unsigned long long>(ran_mutants));
  return 0;
}
