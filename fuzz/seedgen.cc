// Seed-corpus generator: writes well-formed inputs for every fuzz
// target by running the project's own golden encoders, so the fuzzers
// start past the outermost "reject garbage" checks and mutate from
// inputs that reach the deep parsing paths.
//
//   fuzz_seedgen <corpus-root>
//
// populates <corpus-root>/{wire,payload_codec,shard,snapshot}/ and is
// idempotent (fixed seeds, deterministic encoders). The checked-in
// fuzz/corpus/ tree was produced by exactly this binary; regenerate
// with `fuzz_seedgen fuzz/corpus` after a wire/format change.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "data/shard.h"
#include "protocol/snapshot.h"
#include "protocol/wire.h"
#include "service/report_stream.h"

namespace fs = std::filesystem;

namespace {

bool WriteFile(const fs::path& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

bool CopyFileBytes(const fs::path& from, const fs::path& to) {
  std::ifstream in(from, std::ios::binary);
  if (!in) return false;
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  return WriteFile(to, bytes);
}

struct StreamSpec {
  const char* name;
  hdldp::service::StreamWorkload workload;
  hdldp::protocol::ReportEncoding encoding;
  std::size_t num_dims;
  std::size_t num_categories;
  std::size_t report_dims;
  // The compact encodings also feed the payload_codec corpus; their
  // geometry here must match the codecs in fuzz_payload_codec.cc.
  bool compact;
};

int GenerateWireAndPayloads(const fs::path& root) {
  using hdldp::protocol::ReportEncoding;
  using hdldp::service::StreamWorkload;
  const StreamSpec specs[] = {
      {"dense", StreamWorkload::kMean, ReportEncoding::kDense, 4, 2, 0,
       false},
      {"sampled", StreamWorkload::kMean, ReportEncoding::kSampled, 4, 2, 2,
       false},
      {"oue", StreamWorkload::kFreq, ReportEncoding::kOue, 4, 3, 2, true},
      {"olh", StreamWorkload::kFreq, ReportEncoding::kOlh, 4, 3, 2, true},
      {"hadamard1", StreamWorkload::kMean, ReportEncoding::kHadamard1, 16, 2,
       2, true},
  };
  for (const StreamSpec& spec : specs) {
    hdldp::service::ReportStreamOptions options;
    options.workload = spec.workload;
    options.encoding = spec.encoding;
    options.num_reports = 4;
    options.num_dims = spec.num_dims;
    options.num_categories = spec.num_categories;
    options.epsilon = 1.0;
    options.report_dims = spec.report_dims;
    options.seed = 7;
    options.num_tenants = 2;
    options.reports_per_tick = 2;
    auto stream = hdldp::service::ReportStream::Create(options);
    if (!stream.ok()) {
      std::fprintf(stderr, "seedgen: stream %s: %s\n", spec.name,
                   stream.status().ToString().c_str());
      return 1;
    }
    for (int i = 0;; ++i) {
      std::vector<std::uint8_t> envelope;
      bool done = false;
      if (const auto st = stream.value().Next(&envelope, &done); !st.ok()) {
        std::fprintf(stderr, "seedgen: stream %s next: %s\n", spec.name,
                     st.ToString().c_str());
        return 1;
      }
      if (done) break;
      char name[64];
      std::snprintf(name, sizeof(name), "%s-%02d.bin", spec.name, i);
      if (!WriteFile(root / "wire" / name, envelope)) return 1;
      if (spec.compact) {
        auto decoded = hdldp::protocol::DecodeEnvelope(envelope);
        if (decoded.ok() &&
            !WriteFile(root / "payload_codec" / name,
                       decoded.value().payload)) {
          return 1;
        }
      }
    }
  }
  return 0;
}

int GenerateShard(const fs::path& root, const fs::path& scratch) {
  const fs::path dir = scratch / "shard";
  auto writer = hdldp::data::ShardWriter::Create(dir.string(), 4);
  if (!writer.ok()) {
    std::fprintf(stderr, "seedgen: shard writer: %s\n",
                 writer.status().ToString().c_str());
    return 1;
  }
  std::vector<double> rows;
  for (int u = 0; u < 10; ++u) {
    for (int d = 0; d < 4; ++d) {
      rows.push_back((u % 2 == 0 ? 1.0 : -1.0) * (0.1 * (d + 1)));
    }
  }
  if (const auto st = writer.value().Append(rows); !st.ok()) return 1;
  if (const auto st = writer.value().Finish(); !st.ok()) return 1;
  return CopyFileBytes(dir / "part-00000.hds",
                       root / "shard" / "part-00000.bin")
             ? 0
             : 1;
}

int GenerateSnapshot(const fs::path& root, const fs::path& scratch) {
  // Same digest as fuzz_snapshot.cc, so the seed opens cleanly there.
  hdldp::protocol::RunDigest digest;
  digest.AddString("hdldp-fuzz-snapshot");
  digest.AddU64(42);
  const fs::path path = scratch / "ckpt";
  auto file = hdldp::protocol::SnapshotFile::Open(path.string(),
                                                  digest.bytes);
  if (!file.ok()) {
    std::fprintf(stderr, "seedgen: snapshot open: %s\n",
                 file.status().ToString().c_str());
    return 1;
  }
  const std::vector<unsigned char> blob = {0x01, 0x02, 0x03, 0x04,
                                           0x05, 0x06, 0x07, 0x08};
  if (const auto st = file.value().Save(0, 3, {1, 4}, blob); !st.ok()) {
    return 1;
  }
  if (const auto st = file.value().Save(1, 7, {}, blob); !st.ok()) return 1;
  if (const auto st = file.value().Close(); !st.ok()) return 1;
  return CopyFileBytes(path, root / "snapshot" / "ckpt.bin") ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-root>\n", argv[0]);
    return 2;
  }
  const fs::path root = argv[1];
  std::error_code ec;
  for (const char* sub : {"wire", "payload_codec", "shard", "snapshot"}) {
    fs::create_directories(root / sub, ec);
    if (ec) {
      std::fprintf(stderr, "seedgen: mkdir %s: %s\n", sub,
                   ec.message().c_str());
      return 1;
    }
  }
  const fs::path scratch = root / ".seedgen-scratch";
  fs::remove_all(scratch, ec);
  fs::create_directories(scratch, ec);
  int rc = GenerateWireAndPayloads(root);
  if (rc == 0) rc = GenerateShard(root, scratch);
  if (rc == 0) rc = GenerateSnapshot(root, scratch);
  fs::remove_all(scratch, ec);
  if (rc == 0) std::printf("seedgen: corpus written under %s\n", argv[1]);
  return rc;
}
